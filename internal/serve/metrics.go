package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds of the latency histogram, chosen
// around the two regimes the service actually has: cache hits (sub-
// microsecond to tens of microseconds) and cold traversals (up to
// whole-KB drift rankings).
var latencyBuckets = [6]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// bucketLabels name the histogram buckets in exported metrics, one per
// latencyBuckets entry plus a final overflow bucket.
var bucketLabels = []string{
	"le_10us", "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "gt_1s",
}

// endpointMetrics tracks one endpoint's counters and latency histogram.
// All fields are updated atomically; reads may be slightly torn across
// fields, which is fine for monitoring.
type endpointMetrics struct {
	requests    atomic.Int64
	errors      atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64
	totalNanos  atomic.Int64
	buckets     [len(latencyBuckets) + 1]atomic.Int64
}

// observe records one completed request.
func (m *endpointMetrics) observe(d time.Duration, err error) {
	m.requests.Add(1)
	if err != nil {
		m.errors.Add(1)
	}
	m.totalNanos.Add(int64(d))
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if d <= latencyBuckets[i] {
			break
		}
	}
	m.buckets[i].Add(1)
}

// EndpointStats is the exported snapshot of one endpoint's metrics.
type EndpointStats struct {
	Requests    int64            `json:"requests"`
	Errors      int64            `json:"errors"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Coalesced   int64            `json:"coalesced"`
	AvgMicros   int64            `json:"avg_micros"`
	Latency     map[string]int64 `json:"latency"`
}

// snapshot copies the counters into an exported view.
func (m *endpointMetrics) snapshot() EndpointStats {
	s := EndpointStats{
		Requests:    m.requests.Load(),
		Errors:      m.errors.Load(),
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMisses.Load(),
		Coalesced:   m.coalesced.Load(),
		Latency:     make(map[string]int64, len(bucketLabels)),
	}
	if s.Requests > 0 {
		s.AvgMicros = m.totalNanos.Load() / s.Requests / int64(time.Microsecond)
	}
	for i := range m.buckets {
		s.Latency[bucketLabels[i]] = m.buckets[i].Load()
	}
	return s
}

// Metrics is the full exported metrics view of a Service.
type Metrics struct {
	Generation uint64 `json:"snapshot_generation"`
	Swaps      int64  `json:"snapshot_swaps"`
	CacheSize  int    `json:"cache_entries"`
	// Shed counts queries rejected by admission control (ErrOverloaded).
	Shed      int64                    `json:"shed"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// merge folds another service's metrics into the receiver, summing
// counters; the generation reported is the largest seen. Routers use
// this to export one fleet-wide view alongside the per-shard ones.
func (m *Metrics) merge(o Metrics) {
	if o.Generation > m.Generation {
		m.Generation = o.Generation
	}
	m.Swaps += o.Swaps
	m.CacheSize += o.CacheSize
	m.Shed += o.Shed
	if m.Endpoints == nil {
		m.Endpoints = make(map[string]EndpointStats, len(o.Endpoints))
	}
	for name, es := range o.Endpoints {
		cur := m.Endpoints[name]
		// AvgMicros re-weights by request count so the merged average is
		// the true fleet average, not an average of averages.
		totalReq := cur.Requests + es.Requests
		if totalReq > 0 {
			cur.AvgMicros = (cur.AvgMicros*cur.Requests + es.AvgMicros*es.Requests) / totalReq
		}
		cur.Requests = totalReq
		cur.Errors += es.Errors
		cur.CacheHits += es.CacheHits
		cur.CacheMisses += es.CacheMisses
		cur.Coalesced += es.Coalesced
		if cur.Latency == nil {
			cur.Latency = make(map[string]int64, len(bucketLabels))
		}
		for _, label := range bucketLabels {
			cur.Latency[label] += es.Latency[label]
		}
		m.Endpoints[name] = cur
	}
}

// ExpvarHandler returns an http.Handler that serves the service metrics
// as a JSON document in the expvar style ("/debug/vars"): a flat map of
// exported variables. It avoids the global expvar registry so multiple
// Services (e.g. in tests) never collide on Publish.
func (s *Service) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeExpvar(w, map[string]any{"driftserve": s.Metrics()})
	})
}

// writeExpvar encodes one expvar-style document, shared by the Service
// and Router handlers.
func writeExpvar(w http.ResponseWriter, doc map[string]any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
