package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"

	"driftclean/internal/fault"
	"driftclean/internal/kb"
	"driftclean/internal/snapshot"
)

// fleetKB builds a KB with nc concepts whose trigger chains have varied
// lengths, so drift depths differ across concepts and the fleet-wide
// ranking genuinely interleaves shards.
func fleetKB(nc int) *kb.KB {
	k := kb.New()
	id := 0
	for c := 0; c < nc; c++ {
		concept := "concept-" + strconv.Itoa(c)
		chain := 2 + c%5
		for i := 0; i < chain; i++ {
			inst := "inst-" + strconv.Itoa(i)
			var trig []string
			if i > 0 {
				trig = []string{"inst-" + strconv.Itoa(i-1)}
			}
			k.AddExtraction(id, concept, []string{concept}, []string{inst}, trig, c+i+1)
			id++
		}
	}
	return k
}

// buildFleet partitions snap across the given shard count and returns
// the router plus its shard services. perShard lets a test give one
// shard special options (fault injection); nil means defaults.
func buildFleet(t *testing.T, snap *snapshot.Snapshot, shards int, perShard func(i int) Options, ropts RouterOptions) (*Router, []*Service) {
	t.Helper()
	ring := NewRing(shards, 32)
	parts := snap.Partition(shards, ring.Owner)
	svcs := make([]*Service, shards)
	for i := range svcs {
		opts := Options{}
		if perShard != nil {
			opts = perShard(i)
		}
		svcs[i] = New(parts[i], opts)
	}
	return NewRouter(svcs, ring, ropts), svcs
}

// asJSON canonicalizes a response for byte comparison.
func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestRouterByteIdenticalAcrossShardCounts is the tentpole acceptance
// gate: for the same snapshot, every response a router serves is byte
// for byte what a single unsharded service serves, at every shard
// count. Sharding must be a capacity decision, never a semantic one.
func TestRouterByteIdenticalAcrossShardCounts(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(13))
	single := New(snap, Options{})
	ctx := context.Background()

	wantStats, err := single.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantConcepts, err := single.Concepts(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3, 5, 8} {
		r, _ := buildFleet(t, snap, shards, nil, RouterOptions{})
		if r.Generation() != snap.Generation() {
			t.Fatalf("shards=%d: generation %d, want %d", shards, r.Generation(), snap.Generation())
		}

		got, err := r.Stats(ctx)
		if err != nil {
			t.Fatalf("shards=%d Stats: %v", shards, err)
		}
		if asJSON(t, got) != asJSON(t, wantStats) {
			t.Errorf("shards=%d Stats diverged:\n got %s\nwant %s", shards, asJSON(t, got), asJSON(t, wantStats))
		}

		cs, err := r.Concepts(ctx)
		if err != nil {
			t.Fatalf("shards=%d Concepts: %v", shards, err)
		}
		if asJSON(t, cs) != asJSON(t, wantConcepts) {
			t.Errorf("shards=%d Concepts diverged", shards)
		}

		for _, n := range []int{1, 5, 1000} {
			want, err := single.Drifted(ctx, "", n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Drifted(ctx, "", n)
			if err != nil {
				t.Fatalf("shards=%d Drifted(all,%d): %v", shards, n, err)
			}
			if asJSON(t, got) != asJSON(t, want) {
				t.Errorf("shards=%d Drifted(all,%d) diverged:\n got %s\nwant %s",
					shards, n, asJSON(t, got), asJSON(t, want))
			}
		}

		for _, ci := range wantConcepts {
			want, err := single.Instances(ctx, ci.Name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Instances(ctx, ci.Name)
			if err != nil {
				t.Fatalf("shards=%d Instances(%s): %v", shards, ci.Name, err)
			}
			if asJSON(t, got) != asJSON(t, want) {
				t.Errorf("shards=%d Instances(%s) diverged", shards, ci.Name)
			}

			wantD, err := single.Drifted(ctx, ci.Name, 3)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := r.Drifted(ctx, ci.Name, 3)
			if err != nil {
				t.Fatalf("shards=%d Drifted(%s): %v", shards, ci.Name, err)
			}
			if asJSON(t, gotD) != asJSON(t, wantD) {
				t.Errorf("shards=%d Drifted(%s,3) diverged", shards, ci.Name)
			}
		}

		wantEx, err := single.Explain(ctx, "concept-4", "inst-2", 0)
		if err != nil {
			t.Fatal(err)
		}
		gotEx, err := r.Explain(ctx, "concept-4", "inst-2", 0)
		if err != nil {
			t.Fatalf("shards=%d Explain: %v", shards, err)
		}
		if asJSON(t, gotEx) != asJSON(t, wantEx) {
			t.Errorf("shards=%d Explain diverged", shards)
		}
	}
}

// TestRouterRoutesPointLookupsToOwner: each Instances call lands on
// exactly the shard the ring assigns — the other shards never see it.
func TestRouterRoutesPointLookupsToOwner(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(12))
	r, svcs := buildFleet(t, snap, 4, nil, RouterOptions{})
	ctx := context.Background()

	wantPerShard := make([]int64, len(svcs))
	for c := 0; c < 12; c++ {
		concept := "concept-" + strconv.Itoa(c)
		wantPerShard[r.Owner(concept)]++
		if _, err := r.Instances(ctx, concept); err != nil {
			t.Fatalf("Instances(%s): %v", concept, err)
		}
	}
	for i, svc := range svcs {
		got := svc.Metrics().Endpoints["instances"].Requests
		if got != wantPerShard[i] {
			t.Errorf("shard %d served %d instances requests, want %d", i, got, wantPerShard[i])
		}
	}
	// Unknown concepts still route (to whatever shard hashes them) and
	// surface the owner's ErrNotFound unchanged.
	if _, err := r.Instances(ctx, "no-such-concept"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown concept err = %v, want ErrNotFound", err)
	}
}

// failShard gives shard target a fault injector that fails every query
// endpoint; other shards stay healthy.
func failShard(target int) func(i int) Options {
	rules := map[string]fault.Rule{"serve.*": {ErrProb: 1}}
	return func(i int) Options {
		if i == target {
			return Options{Fault: fault.New(1, rules)}
		}
		return Options{}
	}
}

// TestRouterStrictModeFailsClosed: without AllowPartial, one failing
// shard fails every scatter-gather with ErrShard — never a silently
// torn merge — while point lookups to healthy shards keep working.
func TestRouterStrictModeFailsClosed(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(12))
	const bad = 1
	r, _ := buildFleet(t, snap, 3, failShard(bad), RouterOptions{})
	ctx := context.Background()

	if _, err := r.Concepts(ctx); !errors.Is(err, ErrShard) {
		t.Errorf("Concepts err = %v, want ErrShard", err)
	}
	if _, err := r.Stats(ctx); !errors.Is(err, ErrShard) {
		t.Errorf("Stats err = %v, want ErrShard", err)
	}
	if _, err := r.Drifted(ctx, "", 5); !errors.Is(err, ErrShard) {
		t.Errorf("Drifted err = %v, want ErrShard", err)
	}

	for c := 0; c < 12; c++ {
		concept := "concept-" + strconv.Itoa(c)
		_, err := r.Instances(ctx, concept)
		if r.Owner(concept) == bad {
			if err == nil {
				t.Errorf("Instances(%s) on failed shard: want error", concept)
			}
		} else if err != nil {
			t.Errorf("Instances(%s) on healthy shard: %v", concept, err)
		}
	}
}

// TestRouterAllowPartialDegrades: with AllowPartial, a failing shard
// degrades the merge instead of failing it — healthy shards' results
// come back complete, the request's GatherStatus is marked, and the
// degraded listing is exactly the healthy-ownership subset.
func TestRouterAllowPartialDegrades(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(12))
	const bad = 2
	r, _ := buildFleet(t, snap, 3, failShard(bad), RouterOptions{AllowPartial: true})
	ctx, gs := WithGatherStatus(context.Background())

	cs, err := r.Concepts(ctx)
	if err != nil {
		t.Fatalf("AllowPartial Concepts: %v", err)
	}
	if !gs.Degraded() || gs.FailedShards() != 1 {
		t.Fatalf("GatherStatus = degraded %v, failed %d; want true, 1", gs.Degraded(), gs.FailedShards())
	}
	var want []string
	for c := 0; c < 12; c++ {
		concept := "concept-" + strconv.Itoa(c)
		if r.Owner(concept) != bad {
			want = append(want, concept)
		}
	}
	sort.Strings(want) // the merge order is lexicographic, like the listing
	if len(cs) != len(want) {
		t.Fatalf("degraded Concepts has %d entries, want %d (healthy shards only)", len(cs), len(want))
	}
	for i, ci := range cs {
		if ci.Name != want[i] {
			t.Fatalf("degraded Concepts[%d] = %s, want %s", i, ci.Name, want[i])
		}
	}

	// A healthy gather must not mark the status of a fresh request.
	ctx2, gs2 := WithGatherStatus(context.Background())
	healthy, _ := buildFleet(t, snap, 3, nil, RouterOptions{AllowPartial: true})
	if _, err := healthy.Concepts(ctx2); err != nil {
		t.Fatal(err)
	}
	if gs2.Degraded() {
		t.Error("healthy gather marked the request degraded")
	}
}

// TestRouterAllowPartialAllShardsDown: losing every shard is an error
// even in AllowPartial mode — there is nothing left to degrade to.
func TestRouterAllowPartialAllShardsDown(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(6))
	r, _ := buildFleet(t, snap, 2,
		func(int) Options {
			return Options{Fault: fault.New(1, map[string]fault.Rule{"serve.*": {ErrProb: 1}})}
		},
		RouterOptions{AllowPartial: true})
	if _, err := r.Concepts(context.Background()); !errors.Is(err, ErrShard) {
		t.Errorf("all-shards-down Concepts err = %v, want ErrShard", err)
	}
}

// TestRouterFaultSites: the router's own chaos seams. serve.route fires
// on point lookups, serve.gather on scatter-gathers; both recover once
// the rule stops firing, and gather failures carry ErrShard.
func TestRouterFaultSites(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(6))

	fi := fault.New(7, map[string]fault.Rule{
		"serve.route":  {FailFirst: 1},
		"serve.gather": {FailFirst: 1},
	})
	r, _ := buildFleet(t, snap, 2, nil, RouterOptions{Fault: fi})
	ctx := context.Background()

	if _, err := r.Instances(ctx, "concept-0"); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("first routed lookup err = %v, want injected", err)
	}
	if _, err := r.Instances(ctx, "concept-0"); err != nil {
		t.Errorf("second routed lookup: %v", err)
	}

	_, err := r.Concepts(ctx)
	if !errors.Is(err, ErrShard) || !errors.Is(err, fault.ErrInjected) {
		t.Errorf("first gather err = %v, want ErrShard wrapping injected", err)
	}
	if _, err := r.Concepts(ctx); err != nil {
		t.Errorf("second gather: %v", err)
	}

	if got := fi.Count("serve.route"); got != 2 {
		t.Errorf("serve.route hits = %d, want 2", got)
	}
	if got := fi.Count("serve.gather"); got != 2 {
		t.Errorf("serve.gather hits = %d, want 2", got)
	}
}

// TestRouterMetricsAggregate: the fleet view sums the shards.
func TestRouterMetricsAggregate(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(9))
	r, svcs := buildFleet(t, snap, 3, nil, RouterOptions{})
	ctx := context.Background()

	for c := 0; c < 9; c++ {
		if _, err := r.Instances(ctx, "concept-"+strconv.Itoa(c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Concepts(ctx); err != nil {
		t.Fatal(err)
	}

	var wantInst, wantConc int64
	for _, svc := range svcs {
		m := svc.Metrics()
		wantInst += m.Endpoints["instances"].Requests
		wantConc += m.Endpoints["concepts"].Requests
	}
	m := r.Metrics()
	if m.Endpoints["instances"].Requests != wantInst || wantInst != 9 {
		t.Errorf("aggregate instances requests = %d (shards sum %d), want 9",
			m.Endpoints["instances"].Requests, wantInst)
	}
	if m.Endpoints["concepts"].Requests != wantConc || wantConc != 3 {
		t.Errorf("aggregate concepts requests = %d (shards sum %d), want 3",
			m.Endpoints["concepts"].Requests, wantConc)
	}
	if m.Generation != snap.Generation() {
		t.Errorf("aggregate generation = %d, want %d", m.Generation, snap.Generation())
	}
	if got := len(r.ShardMetrics()); got != 3 {
		t.Errorf("ShardMetrics len = %d, want 3", got)
	}
}

// TestRouterEmptyFleet: an empty snapshot sharded any which way still
// answers listings with empty (not null) payloads, like a single
// service does.
func TestRouterEmptyFleet(t *testing.T) {
	snap := snapshot.Freeze(kb.New())
	single := New(snap, Options{})
	r, _ := buildFleet(t, snap, 3, nil, RouterOptions{})
	ctx := context.Background()

	for name, q := range map[string]Querier{"single": single, "router": r} {
		cs, err := q.Concepts(ctx)
		if err != nil || cs == nil || len(cs) != 0 {
			t.Errorf("%s Concepts = %v, %v; want empty non-nil", name, cs, err)
		}
		dr, err := q.Drifted(ctx, "", 5)
		if err != nil || dr == nil || len(dr) != 0 {
			t.Errorf("%s Drifted = %v, %v; want empty non-nil", name, dr, err)
		}
	}
}

// TestNewRouterRejectsMismatchedRing: the ring and the shard slice must
// agree on the fleet size; a mismatch would silently misroute.
func TestNewRouterRejectsMismatchedRing(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(4))
	ring := NewRing(2, 16)
	parts := snap.Partition(2, ring.Owner)
	svcs := []*Service{New(parts[0], Options{}), New(parts[1], Options{})}

	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter with mismatched ring must panic")
		}
	}()
	NewRouter(svcs, NewRing(3, 16), RouterOptions{})
}

// TestRouterStaleAggregation: the fleet is stale as soon as any shard
// is.
func TestRouterStaleAggregation(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(4))
	r, svcs := buildFleet(t, snap, 2, nil, RouterOptions{})
	if r.Stale() {
		t.Fatal("fresh fleet reported stale")
	}
	svcs[1].MarkStale(true)
	if !r.Stale() {
		t.Fatal("fleet with a stale shard reported fresh")
	}
	svcs[1].MarkStale(false)
	if r.Stale() {
		t.Fatal("unmarking did not clear fleet staleness")
	}
}

// TestRouterExpvarHandler: the fleet handler exports the aggregate and
// the per-shard breakdown.
func TestRouterExpvarHandler(t *testing.T) {
	snap := snapshot.Freeze(fleetKB(4))
	r, _ := buildFleet(t, snap, 2, nil, RouterOptions{})
	if _, err := r.Concepts(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec := newExpvarRecorder(t, r)
	var doc struct {
		Driftserve Metrics   `json:"driftserve"`
		Shards     []Metrics `json:"shards"`
	}
	if err := json.Unmarshal(rec, &doc); err != nil {
		t.Fatalf("unmarshal expvar doc: %v", err)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("expvar shards = %d, want 2", len(doc.Shards))
	}
	if doc.Driftserve.Endpoints["concepts"].Requests != 2 {
		t.Errorf("aggregate concepts requests = %d, want 2 (one per shard)",
			doc.Driftserve.Endpoints["concepts"].Requests)
	}
}

// newExpvarRecorder serves one request against q's expvar handler and
// returns the body.
func newExpvarRecorder(t *testing.T, q Querier) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "/debug/vars", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	q.ExpvarHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("expvar status = %d", rec.Code)
	}
	return rec.Body.Bytes()
}
