package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, the rest block until it finishes
// and receive the same result. This is the classic singleflight pattern,
// reimplemented here because the module is dependency-free by design.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg sync.WaitGroup
	// waiters counts callers coalesced onto this call; tests use it to
	// deterministically wait until followers are parked.
	waiters atomic.Int32
	val     any
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do executes fn once per in-flight key. shared reports whether this
// caller piggybacked on another caller's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The key must be released no matter how fn exits: before these
	// defers, a panicking loader left the key claimed forever (every
	// later caller coalesced onto a call that would never complete) and
	// left already-parked followers blocked on a WaitGroup nobody would
	// ever Done.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	completed := false
	var panicVal any
	func() {
		defer func() {
			if !completed {
				panicVal = recover()
				c.err = fmt.Errorf("serve: singleflight leader panicked: %v", panicVal)
			}
			c.wg.Done()
		}()
		c.val, c.err = fn()
		completed = true
	}()
	if !completed {
		// Followers got the error above; the leader re-panics so its own
		// call stack observes the original failure.
		panic(panicVal)
	}
	return c.val, c.err, false
}
