package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var calls int
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.do("k", func() (any, error) {
			calls++
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("leader err = %v", err)
		}
		results[0] = v
	}()
	<-started

	c := func() *flightCall {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.m["k"]
	}()
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.do("k", func() (any, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || !shared {
				t.Errorf("follower %d: err=%v shared=%v", i, err, shared)
			}
			results[i] = v
		}(i)
	}
	waitFor(t, func() bool { return c.waiters.Load() == 2 })
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("results[%d] = %v, want 42", i, v)
		}
	}
}

// TestFlightGroupLeaderPanic is the regression test for the panic leak:
// before do released its state with defers, a panicking loader left the
// key claimed forever — parked followers never woke, and every later
// call for the key coalesced onto the dead flight. The old code fails
// this test by deadlocking on the parked follower.
func TestFlightGroupLeaderPanic(t *testing.T) {
	g := newFlightGroup()
	boom := make(chan struct{})
	started := make(chan struct{})

	// Leader: panics mid-flight; the panic must propagate to its caller.
	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		g.do("k", func() (any, error) {
			close(started)
			<-boom
			panic("loader exploded")
		})
		t.Error("leader returned normally from a panicking loader")
	}()
	<-started

	// Follower: parked on the in-flight call before the panic fires.
	c := func() *flightCall {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.m["k"]
	}()
	followerErr := make(chan error, 1)
	go func() {
		_, err, _ := g.do("k", func() (any, error) {
			t.Error("parked follower executed fn after leader panic")
			return nil, nil
		})
		followerErr <- err
	}()
	waitFor(t, func() bool { return c.waiters.Load() == 1 })

	close(boom)
	if r := <-leaderDone; r != "loader exploded" {
		t.Errorf("leader recovered %v, want the original panic value", r)
	}
	select {
	case err := <-followerErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("follower err = %v, want a panic-surfacing error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower still parked after leader panic (the old leak)")
	}

	// The key must be free again: a fresh call runs its own fn.
	v, err, shared := g.do("k", func() (any, error) { return "fresh", nil })
	if v != "fresh" || err != nil || shared {
		t.Errorf("post-panic call = (%v, %v, %v), want a fresh execution", v, err, shared)
	}
}

func TestFlightGroupErrorPropagates(t *testing.T) {
	g := newFlightGroup()
	want := errors.New("load failed")
	_, err, _ := g.do("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
	if _, err, _ := g.do("k", func() (any, error) { return 1, nil }); err != nil {
		t.Errorf("key not released after error: %v", err)
	}
}

// waitFor polls until cond holds, failing the test after a timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
