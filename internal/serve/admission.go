package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when a query is shed by admission control:
// the service already has MaxInflight queries executing and QueueDepth
// more waiting. HTTP layers map it onto 429 Too Many Requests so
// clients back off instead of piling onto a saturated shard.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// admission is a per-service bounded execution queue: at most
// maxInflight queries execute concurrently, at most queueDepth more
// wait for a slot, and everything beyond that is shed immediately with
// ErrOverloaded. Shedding at the front door keeps one slow shard's
// queue from growing without bound and converting overload into
// unbounded tail latency — the fleet degrades to fast 429s instead.
//
// A nil *admission is the no-op used when Options leaves MaxInflight
// zero (unlimited).
type admission struct {
	sem        chan struct{} // capacity = maxInflight; holding a token = executing
	queueDepth int64
	waiting    atomic.Int64
	shed       atomic.Int64
}

// newAdmission builds the queue; maxInflight <= 0 disables admission
// control entirely (returns nil).
func newAdmission(maxInflight, queueDepth int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		sem:        make(chan struct{}, maxInflight),
		queueDepth: int64(queueDepth),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// none is free. It returns ErrOverloaded when the queue is full and the
// context's error if the caller gives up while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	// Fast path: a slot is free, skip the queue accounting.
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return ErrOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

// shedCount returns how many queries admission control has shed.
func (a *admission) shedCount() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}
