package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"driftclean/internal/kb"
	"driftclean/internal/snapshot"
)

// chainKB builds a KB whose concept "c" holds a single trigger chain of
// n instances (i0 core, i1 triggered by i0, ...) plus a flat concept.
func chainKB(n int) *kb.KB {
	k := kb.New()
	k.AddExtraction(0, "c", []string{"c"}, []string{"i0"}, nil, 1)
	for i := 1; i < n; i++ {
		k.AddExtraction(i, "c", []string{"c"},
			[]string{"i" + strconv.Itoa(i)}, []string{"i" + strconv.Itoa(i-1)}, i+1)
	}
	k.AddExtraction(n, "flat", []string{"flat"}, []string{"x", "y"}, nil, 1)
	return k
}

func testService(t testing.TB, n int, opts Options) (*Service, *kb.KB) {
	t.Helper()
	k := chainKB(n)
	return New(snapshot.Freeze(k), opts), k
}

func TestEndpointsAnswer(t *testing.T) {
	svc, _ := testService(t, 10, Options{})
	ctx := context.Background()

	st, err := svc.Stats(ctx)
	if err != nil || st.Stats.DistinctPairs != 12 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}
	cs, err := svc.Concepts(ctx)
	if err != nil || len(cs) != 2 || cs[0].Name != "c" || cs[0].Instances != 10 {
		t.Fatalf("Concepts = %+v, %v", cs, err)
	}
	ins, err := svc.Instances(ctx, "c")
	if err != nil || len(ins) != 10 {
		t.Fatalf("Instances = %+v, %v", ins, err)
	}
	ex, err := svc.Explain(ctx, "c", "i5", 0)
	if err != nil || len(ex.Supports) == 0 || len(ex.Supports[0].Chain) != 6 {
		t.Fatalf("Explain = %+v, %v", ex, err)
	}
	dr, err := svc.Drifted(ctx, "c", 3)
	if err != nil || len(dr) != 3 || dr[0].Name != "i9" || dr[0].Depth != 10 {
		t.Fatalf("Drifted = %+v, %v", dr, err)
	}
}

func TestNotFoundAndNoSnapshot(t *testing.T) {
	svc, _ := testService(t, 4, Options{})
	ctx := context.Background()
	if _, err := svc.Instances(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Instances(nope) err = %v, want ErrNotFound", err)
	}
	if _, err := svc.Explain(ctx, "c", "nope", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Explain err = %v, want ErrNotFound", err)
	}
	if _, err := svc.Drifted(ctx, "nope", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Drifted err = %v, want ErrNotFound", err)
	}

	empty := New(nil, Options{})
	if _, err := empty.Stats(ctx); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("Stats with no snapshot err = %v, want ErrNoSnapshot", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Stats(canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("Stats with canceled ctx err = %v", err)
	}
}

func TestCacheHitCounts(t *testing.T) {
	svc, k := testService(t, 8, Options{})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := svc.Drifted(ctx, "c", 5); err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics().Endpoints["drifted"]
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Errorf("after 3 identical queries: misses=%d hits=%d, want 1/2", m.CacheMisses, m.CacheHits)
	}

	// A different query key misses independently.
	if _, err := svc.Drifted(ctx, "c", 6); err != nil {
		t.Fatal(err)
	}
	m = svc.Metrics().Endpoints["drifted"]
	if m.CacheMisses != 2 {
		t.Errorf("distinct query did not miss: %+v", m)
	}

	// Swapping in a new snapshot invalidates by construction: the key
	// embeds the generation.
	svc.Swap(snapshot.Freeze(k))
	if _, err := svc.Drifted(ctx, "c", 5); err != nil {
		t.Fatal(err)
	}
	m = svc.Metrics().Endpoints["drifted"]
	if m.CacheMisses != 3 {
		t.Errorf("query after swap should miss: %+v", m)
	}

	// Errors are never cached.
	for i := 0; i < 2; i++ {
		if _, err := svc.Instances(ctx, "nope"); !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	im := svc.Metrics().Endpoints["instances"]
	if im.CacheMisses != 2 || im.CacheHits != 0 || im.Errors != 2 {
		t.Errorf("error caching: %+v", im)
	}
}

func TestCacheDisabled(t *testing.T) {
	svc, _ := testService(t, 8, Options{CacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := svc.Stats(ctx); err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics().Endpoints["stats"]
	if m.CacheHits != 0 || m.CacheMisses != 3 {
		t.Errorf("disabled cache still hit: %+v", m)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	c.add("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a survived eviction")
	}
	if v, ok := c.get("b"); !ok || v != 2 {
		t.Error("b missing")
	}
	c.add("d", 4) // evicts c (b was just used)
	if _, ok := c.get("c"); ok {
		t.Error("c survived eviction after b was touched")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestCoalescing proves that identical in-flight queries compute once:
// one goroutine blocks inside compute while followers pile up on the
// same key, then everyone gets the single result.
func TestCoalescing(t *testing.T) {
	svc, _ := testService(t, 4, Options{})
	const followers = 7

	var computes atomic.Int32
	computing := make(chan struct{})
	release := make(chan struct{})
	compute := func(*snapshot.Snapshot) (any, error) {
		if computes.Add(1) == 1 {
			close(computing)
			<-release
		}
		return "result", nil
	}

	results := make(chan string, followers+1)
	runOne := func() {
		v, err := svc.do(context.Background(), "stats", "coalesce-me", compute)
		if err != nil {
			t.Error(err)
			results <- ""
			return
		}
		results <- v.(string)
	}

	go runOne()
	<-computing // leader is inside compute, key is in flight

	for i := 0; i < followers; i++ {
		go runOne()
	}
	// Deterministically wait until every follower is parked on the call.
	key := "stats\x1f" + strconv.FormatUint(svc.Generation(), 10) + "\x1fcoalesce-me"
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.flights.mu.Lock()
		c := svc.flights.m[key]
		parked := int32(0)
		if c != nil {
			parked = c.waiters.Load()
		}
		svc.flights.mu.Unlock()
		if parked >= followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers parked", parked, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < followers+1; i++ {
		if got := <-results; got != "result" {
			t.Fatalf("result %d = %q", i, got)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	m := svc.Metrics().Endpoints["stats"]
	if m.Coalesced != followers || m.CacheMisses != 1 {
		t.Errorf("coalesced=%d misses=%d, want %d/1", m.Coalesced, m.CacheMisses, followers)
	}
}

// TestSwapUnderConcurrentReaders is the -race hammer: 12 readers issue
// queries nonstop while the writer swaps fresh snapshots underneath
// them. Every reader must only ever observe fully-consistent snapshots.
func TestSwapUnderConcurrentReaders(t *testing.T) {
	k := chainKB(32)
	svc := New(snapshot.Freeze(k), Options{})
	minGen := svc.Generation()

	const readers = 12
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st, err := svc.Stats(ctx)
				if err != nil {
					errs <- err
					return
				}
				if st.Generation < minGen {
					errs <- fmt.Errorf("reader %d saw stale generation %d < %d", r, st.Generation, minGen)
					return
				}
				// Internally-consistent reads regardless of swaps: the
				// chain concept always has exactly 32 instances.
				ins, err := svc.Instances(ctx, "c")
				if err != nil {
					errs <- err
					return
				}
				if len(ins) != 32 {
					errs <- fmt.Errorf("reader %d saw %d instances", r, len(ins))
					return
				}
				if _, err := svc.Drifted(ctx, "c", 4); err != nil {
					errs <- err
					return
				}
				if _, err := svc.Explain(ctx, "c", "i7", 1); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	for i := 0; i < 60; i++ {
		// Mutate the writer's KB, then publish a fresh frozen view —
		// the single-writer / many-reader protocol end to end.
		k.AddExtraction(1000+i, "flat", []string{"flat"}, []string{"z" + strconv.Itoa(i)}, nil, 2)
		old := svc.Swap(snapshot.Freeze(k))
		if old == nil {
			t.Error("Swap returned nil previous snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := svc.Metrics().Swaps; got != 60 {
		t.Errorf("swaps = %d, want 60", got)
	}
}

func TestExpvarHandler(t *testing.T) {
	svc, _ := testService(t, 4, Options{})
	if _, err := svc.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	svc.ExpvarHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Driftserve Metrics `json:"driftserve"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Driftserve.Endpoints["stats"].Requests != 1 {
		t.Errorf("metrics = %+v", doc.Driftserve)
	}
	if doc.Driftserve.Generation == 0 {
		t.Error("generation missing from metrics")
	}
}
