package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"driftclean/internal/corpus"
	"driftclean/internal/fault"
	"driftclean/internal/snapshot"
)

// TestIngesterSwapsOnSuccess: each successful ingest publishes the
// run's snapshot, bumps the batch counter and clears any stale flag.
func TestIngesterSwapsOnSuccess(t *testing.T) {
	svc := New(nil, Options{})
	svc.MarkStale(true)
	snap := snapshot.Freeze(chainKB(3))
	ing := NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		return snap, nil
	}, nil)

	gen, err := ing.Ingest(context.Background(), nil)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if gen != snap.Generation() {
		t.Fatalf("generation = %d, want %d", gen, snap.Generation())
	}
	if svc.Current() != snap {
		t.Fatal("snapshot not swapped in")
	}
	if svc.Stale() {
		t.Fatal("successful ingest must clear the stale flag")
	}
	if ing.Batches() != 1 {
		t.Fatalf("Batches = %d, want 1", ing.Batches())
	}
}

// TestIngesterFailureLeavesSnapshotUntouched: a failed run marks the
// service stale but keeps serving the previous snapshot — never a torn
// or missing view — and a retry that succeeds recovers fully.
func TestIngesterFailureLeavesSnapshotUntouched(t *testing.T) {
	good := snapshot.Freeze(chainKB(3))
	svc := New(good, Options{})
	next := snapshot.Freeze(chainKB(5))
	boom := errors.New("pipeline exploded")
	fail := true
	ing := NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		if fail {
			return nil, boom
		}
		return next, nil
	}, nil)

	if _, err := ing.Ingest(context.Background(), nil); !errors.Is(err, boom) {
		t.Fatalf("Ingest error = %v, want %v", err, boom)
	}
	if svc.Current() != good {
		t.Fatal("failed ingest must leave the previous snapshot serving")
	}
	if !svc.Stale() {
		t.Fatal("failed ingest must mark the service stale")
	}
	if ing.Batches() != 0 {
		t.Fatalf("Batches = %d, want 0 after failure", ing.Batches())
	}
	if _, err := svc.Stats(context.Background()); err != nil {
		t.Fatalf("queries must keep working on the stale snapshot: %v", err)
	}

	fail = false
	if _, err := ing.Ingest(context.Background(), nil); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if svc.Current() != next || svc.Stale() {
		t.Fatalf("retry must publish and clear stale (cur==next %v, stale %v)",
			svc.Current() == next, svc.Stale())
	}
}

// TestBatchesDoesNotBlockBehindIngest: Batches is a monitoring read and
// must return while an Ingest call is mid-pipeline. The old
// implementation took the ingest mutex, so a slow or wedged checkpoint
// froze every health endpoint polling the counter; this test deadlocks
// (and times out) on that code.
func TestBatchesDoesNotBlockBehindIngest(t *testing.T) {
	svc := New(snapshot.Freeze(chainKB(3)), Options{})
	entered := make(chan struct{})
	release := make(chan struct{})
	ing := NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		close(entered)
		<-release
		return snapshot.Freeze(chainKB(4)), nil
	}, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := ing.Ingest(context.Background(), nil); err != nil {
			t.Errorf("Ingest: %v", err)
		}
	}()
	<-entered // the ingest mutex is now held, pipeline mid-checkpoint

	got := make(chan int, 1)
	go func() { got <- ing.Batches() }()
	select {
	case n := <-got:
		if n != 0 {
			t.Errorf("Batches mid-ingest = %d, want 0 (batch not yet published)", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Batches() blocked behind an in-flight Ingest")
	}

	close(release)
	<-done
	if got := ing.Batches(); got != 1 {
		t.Errorf("Batches after ingest = %d, want 1", got)
	}
}

// TestIngesterFaultSite: an injected serve.ingest fault fails the call
// before the pipeline runs, with the same stale-but-serving contract.
func TestIngesterFaultSite(t *testing.T) {
	good := snapshot.Freeze(chainKB(3))
	svc := New(good, Options{})
	ran := false
	fi := fault.New(1, map[string]fault.Rule{"serve.ingest": {FailFirst: 1}})
	ing := NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		ran = true
		return snapshot.Freeze(chainKB(4)), nil
	}, fi)

	if _, err := ing.Ingest(context.Background(), nil); err == nil {
		t.Fatal("injected fault must surface as an error")
	}
	if ran {
		t.Fatal("injected fault must short-circuit before the pipeline runs")
	}
	if svc.Current() != good || !svc.Stale() {
		t.Fatalf("fault must leave previous snapshot serving and stale (cur==good %v, stale %v)",
			svc.Current() == good, svc.Stale())
	}
	if got := fi.Count("serve.ingest"); got != 1 {
		t.Fatalf("site hit count = %d, want 1", got)
	}

	// The rule only fails the first hit; the second call goes through.
	if _, err := ing.Ingest(context.Background(), nil); err != nil {
		t.Fatalf("second ingest: %v", err)
	}
	if !ran || svc.Stale() {
		t.Fatalf("second ingest must run the pipeline and clear stale (ran %v, stale %v)", ran, svc.Stale())
	}
}
