package par

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU (%d)", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU (%d)", got, runtime.NumCPU())
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

// TestForCoversEveryIndexOnce is the core contract: every index in
// [0, n) is visited exactly once, at any worker count, including sizes
// that don't divide evenly into chunks.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, chunkSize - 1, chunkSize, chunkSize + 1, 1000} {
		for _, workers := range []int{1, 2, 8, 200} {
			counts := make([]atomic.Int32, n)
			For(n, workers, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForChunkedCoversEveryIndexOnce(t *testing.T) {
	for _, chunk := range []int{-1, 1, 3, 64} {
		counts := make([]atomic.Int32, 500)
		ForChunked(len(counts), 4, chunk, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, c)
			}
		}
	}
}

// TestForSerialPathRunsInOrder pins the workers<=1 degradation to a
// plain in-order loop on the calling goroutine — the A/B baseline the
// determinism tests compare against.
func TestForSerialPathRunsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path visited %v, want ascending order", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("serial path visited %d indices, want 10", len(order))
	}
}

// TestForSlotWrites exercises the intended usage pattern — concurrent
// writers into disjoint index-addressed slots — under the race detector.
func TestForSlotWrites(t *testing.T) {
	slots := make([]int, 10_000)
	For(len(slots), 8, func(i int) { slots[i] = i * i })
	for i, v := range slots {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestForWorkerPanicReachesCaller: a panic inside a worker must surface
// as a panic on the calling goroutine — not crash the process — so the
// pipeline's stage-level recovery can convert it into an error. This
// fails on the pre-capture pool: the process dies before recover runs.
func TestForWorkerPanicReachesCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("propagated panic %v is not an error", r)
		}
		if !errors.Is(err, errBoom) {
			t.Fatalf("propagated panic %v does not unwrap to the original value", err)
		}
	}()
	For(100, 4, func(i int) {
		if i == 37 {
			panic(errBoom)
		}
	})
}

var errBoom = errors.New("boom")

// TestForChunkedPanicNonError: non-error panic payloads survive the
// goroutine hop with their message intact.
func TestForChunkedPanicNonError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if msg := r.(error).Error(); !strings.Contains(msg, "raw payload") {
			t.Fatalf("propagated message %q lost the payload", msg)
		}
	}()
	ForChunked(8, 4, 1, func(i int) { panic("raw payload") })
}

// TestForSerialPanicUnwrapped: on the serial path the panic is the
// caller's own; it must not be wrapped.
func TestForSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if r := recover(); r != "plain" {
			t.Fatalf("serial panic = %v, want the raw value", r)
		}
	}()
	For(4, 1, func(i int) { panic("plain") })
}
