// Package par provides the deterministic fork-join primitive the
// pipeline's hot paths share: a bounded worker pool that processes a
// fixed index space in chunks and writes results into caller-owned,
// index-addressed slots. Because every unit of work is keyed by its
// index — never by arrival order — the output of a parallel run is
// byte-identical to the serial run regardless of worker count or
// scheduling, which is the contract determinism_test.go enforces on the
// whole pipeline.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the number of consecutive indices a worker claims per
// atomic fetch. Chunking keeps the claim counter off the hot path for
// cheap per-item work (a Hearst parse is ~1µs) while staying small
// enough to load-balance skewed work such as per-concept random walks.
const chunkSize = 64

// Workers normalizes a parallelism knob: values below 1 mean "use every
// CPU" (runtime.NumCPU), 1 selects the serial path, higher values are
// used as given.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// capturedPanic wraps a panic value that crossed a worker-goroutine
// boundary. Without the capture, a panicking fn would crash the process
// outright — a recover in the For caller's frames cannot see a panic on
// another goroutine — so the pool records the first panic and re-throws
// it on the calling goroutine after the join. Value preserves the
// original panic payload for errors.As / type inspection.
type capturedPanic struct {
	Value any
}

// Error renders the captured panic; capturedPanic is an error so
// recovery layers can errors.Is/As into the original payload.
func (c *capturedPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v", c.Value)
}

// Unwrap exposes the original panic value when it was itself an error.
func (c *capturedPanic) Unwrap() error {
	if err, ok := c.Value.(error); ok {
		return err
	}
	return nil
}

// For runs fn(i) for every i in [0, n) using the given number of
// workers. With workers <= 1 (or a trivially small n) it degrades to a
// plain loop on the calling goroutine — the serial A/B path. fn must be
// safe to call concurrently and must not assume any ordering between
// indices; determinism comes from writing results into per-index slots.
//
// If fn panics on a worker, the first panic is captured and re-thrown
// on the calling goroutine (wrapped in an error that Unwraps to the
// original value) after all workers have drained, so callers can treat
// a parallel stage exactly like a serial one under recover.
func For(n, workers int, fn func(i int)) {
	ForChunked(n, workers, chunkSize, fn)
}

// ForChunked is For with an explicit chunk size, for workloads whose
// per-item cost is so uneven (e.g. one shard per chunk) that the caller
// wants to pin the claim granularity. It shares For's panic contract:
// the first worker panic is re-thrown on the calling goroutine.
func ForChunked(n, workers, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var caught *capturedPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { caught = &capturedPanic{Value: r} })
				}
			}()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
}
