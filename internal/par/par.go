// Package par provides the deterministic fork-join primitive the
// pipeline's hot paths share: a bounded worker pool that processes a
// fixed index space in chunks and writes results into caller-owned,
// index-addressed slots. Because every unit of work is keyed by its
// index — never by arrival order — the output of a parallel run is
// byte-identical to the serial run regardless of worker count or
// scheduling, which is the contract determinism_test.go enforces on the
// whole pipeline.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the number of consecutive indices a worker claims per
// atomic fetch. Chunking keeps the claim counter off the hot path for
// cheap per-item work (a Hearst parse is ~1µs) while staying small
// enough to load-balance skewed work such as per-concept random walks.
const chunkSize = 64

// Workers normalizes a parallelism knob: values below 1 mean "use every
// CPU" (runtime.NumCPU), 1 selects the serial path, higher values are
// used as given.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// For runs fn(i) for every i in [0, n) using the given number of
// workers. With workers <= 1 (or a trivially small n) it degrades to a
// plain loop on the calling goroutine — the serial A/B path. fn must be
// safe to call concurrently and must not assume any ordering between
// indices; determinism comes from writing results into per-index slots.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(chunkSize)) - chunkSize
				if start >= n {
					return
				}
				end := start + chunkSize
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForChunked is For with an explicit chunk size, for workloads whose
// per-item cost is so uneven (e.g. one shard per chunk) that the caller
// wants to pin the claim granularity.
func ForChunked(n, workers, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
