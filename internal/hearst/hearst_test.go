package hearst

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, text string) Parse {
	t.Helper()
	p, ok := ParseSentence(1, text)
	if !ok {
		t.Fatalf("ParseSentence(%q) failed", text)
	}
	return p
}

func TestUnambiguousSentence(t *testing.T) {
	p := mustParse(t, "animal such as dog , cat and pig .")
	if p.Ambiguous() {
		t.Error("single-candidate sentence reported ambiguous")
	}
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"dog", "cat", "pig"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestLeadInStripped(t *testing.T) {
	p := mustParse(t, "common animal such as dog .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
}

func TestModifierSentenceAmbiguous(t *testing.T) {
	p := mustParse(t, "animal from country such as giraffe and lion .")
	if !p.Ambiguous() {
		t.Error("modifier sentence must be ambiguous")
	}
	if !reflect.DeepEqual(p.Candidates, []string{"animal", "country"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"giraffe", "lion"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestModifierAllPrepositions(t *testing.T) {
	for _, prep := range []string{"from", "in", "of"} {
		p := mustParse(t, "food "+prep+" animal such as beef .")
		if len(p.Candidates) != 2 {
			t.Errorf("prep %q: candidates %v", prep, p.Candidates)
		}
	}
}

func TestOtherThanMisparse(t *testing.T) {
	// The paper's example: "animals other than dogs such as cats" must be
	// parsed with the nearest NP as concept, yielding (cat isA dog_breed).
	p := mustParse(t, "animal other than dog_breed such as cat and horse .")
	if !reflect.DeepEqual(p.Candidates, []string{"dog_breed"}) {
		t.Errorf("Candidates = %v, want [dog_breed]", p.Candidates)
	}
	if !p.OtherThan {
		t.Error("OtherThan flag not set")
	}
	if p.Ambiguous() {
		t.Error("other-than parse should be single-candidate (that is the flaw)")
	}
}

func TestNoSuchAs(t *testing.T) {
	if _, ok := ParseSentence(1, "dogs are animals ."); ok {
		t.Error("sentence without such-as should fail to parse")
	}
}

func TestEmptyInstanceList(t *testing.T) {
	if _, ok := ParseSentence(1, "animal such as ."); ok {
		t.Error("empty instance list should fail to parse")
	}
}

func TestMalformedHead(t *testing.T) {
	if _, ok := ParseSentence(1, "the quick brown fox animal such as dog ."); ok {
		t.Error("unparseable head should fail")
	}
}

func TestDuplicateInstancesDeduped(t *testing.T) {
	p := mustParse(t, "animal such as dog , dog and cat .")
	if !reflect.DeepEqual(p.Instances, []string{"dog", "cat"}) {
		t.Errorf("Instances = %v, want deduped [dog cat]", p.Instances)
	}
}

func TestSentenceIDPropagated(t *testing.T) {
	p, ok := ParseSentence(42, "animal such as dog .")
	if !ok || p.SentenceID != 42 {
		t.Errorf("SentenceID = %d, want 42", p.SentenceID)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("a b  c")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Tokenize = %v", got)
	}
}

func TestSuchAsInsideInstanceListIgnored(t *testing.T) {
	// Only the first such-as splits the sentence.
	p := mustParse(t, "animal such as dog , such and cat .")
	if !reflect.DeepEqual(p.Instances, []string{"dog", "such", "cat"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestIncludingPattern(t *testing.T) {
	p := mustParse(t, "animal including dog , cat and pig .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"dog", "cat", "pig"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestIncludingWithModifier(t *testing.T) {
	p := mustParse(t, "animal from country including giraffe and lion .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal", "country"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
}

func TestEspeciallyPattern(t *testing.T) {
	// The comma before "especially" must not confuse the head parser.
	p := mustParse(t, "many animal , especially dog and cat .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"dog", "cat"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestAndOtherReversedPattern(t *testing.T) {
	p := mustParse(t, "dog , cat and other animal .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"dog", "cat"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
	if p.OtherThan {
		t.Error("reversed pattern is not the other-than hazard")
	}
}

func TestAndOtherWithModifier(t *testing.T) {
	p := mustParse(t, "giraffe and lion and other animal from country .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal", "country"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
	if !reflect.DeepEqual(p.Instances, []string{"giraffe", "lion"}) {
		t.Errorf("Instances = %v", p.Instances)
	}
}

func TestSuchAsTakesPrecedenceOverAndOther(t *testing.T) {
	// A forward marker earlier in the sentence wins.
	p := mustParse(t, "animal such as dog and other .")
	if !reflect.DeepEqual(p.Candidates, []string{"animal"}) {
		t.Errorf("Candidates = %v", p.Candidates)
	}
}

func TestReversedRejectsMalformedHead(t *testing.T) {
	if _, ok := ParseSentence(1, "dog and other the big animal ."); ok {
		t.Error("unparseable reversed head should fail")
	}
}
