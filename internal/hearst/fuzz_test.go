package hearst

import (
	"strings"
	"testing"
)

// FuzzParseSentence drives the parser with arbitrary sentence text and
// checks its structural invariants. The seed corpus covers the four
// sentence classes the corpus generator emits (S1–S4), the "other than X
// such as Y" mis-parse hazard, and degenerate punctuation-only inputs.
func FuzzParseSentence(f *testing.F) {
	seeds := []string{
		// S1: simple forward pattern.
		"animal such as dog , cat and duck .",
		// S2: concept-preposition-concept head (two candidates).
		"animal from country such as chicken and duck .",
		// S3: the "other than" mis-parse hazard (nearest attachment).
		"animal other than dog such as cat and wolf .",
		// S4: reversed pattern.
		"dog , cat and other animal .",
		// Alternate forward markers.
		"many animal including dog and cat .",
		"popular food , especially beef .",
		// Degenerate shapes fuzzing should mutate from.
		"",
		".",
		",",
		"such as",
		"such as .",
		"and other .",
		"animal such as",
		"animal such as , , and .",
		"other than such as and other .",
		"many common popular various animal such as dog .",
		"a b c d e such as f",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		// Must never panic (the real assertion — the fuzz driver turns a
		// panic into a failing input), and on ok must satisfy:
		p, ok := ParseSentence(7, text)
		if !ok {
			return
		}
		if p.SentenceID != 7 {
			t.Fatalf("SentenceID = %d, want 7", p.SentenceID)
		}
		if len(p.Candidates) == 0 {
			t.Fatalf("ok parse with no candidates: %q", text)
		}
		if len(p.Instances) == 0 {
			t.Fatalf("ok parse with no instances: %q", text)
		}
		for _, c := range p.Candidates {
			if c == "" {
				t.Fatalf("empty candidate token from %q", text)
			}
		}
		seen := map[string]bool{}
		for _, e := range p.Instances {
			if e == "" {
				t.Fatalf("empty instance token from %q", text)
			}
			if strings.ContainsAny(e, ",.") && e != "," && e != "." {
				// Instances are whitespace tokens; commas/periods appear
				// only as standalone separator tokens, which the list
				// parser drops.
				continue
			}
			if seen[e] {
				t.Fatalf("duplicate instance %q from %q", e, text)
			}
			seen[e] = true
		}
		// Parsing is a pure function: same input, same output.
		q, ok2 := ParseSentence(7, text)
		if !ok2 {
			t.Fatalf("second parse of %q failed", text)
		}
		if len(q.Candidates) != len(p.Candidates) || len(q.Instances) != len(p.Instances) || q.OtherThan != p.OtherThan {
			t.Fatalf("parse of %q is not deterministic", text)
		}
	})
}

// TestParseOtherThanMisParse pins the paper's Accidental-DP example: the
// naive nearest attachment makes "X other than Y such as Z" propose Y as
// the concept, and the parse is flagged OtherThan.
func TestParseOtherThanMisParse(t *testing.T) {
	p, ok := ParseSentence(1, "animal other than dog such as cat and wolf .")
	if !ok {
		t.Fatal("mis-parse-hazard sentence did not parse")
	}
	if !p.OtherThan {
		t.Error("OtherThan flag not set")
	}
	if len(p.Candidates) != 1 || p.Candidates[0] != "dog" {
		t.Errorf("candidates = %v, want [dog] (nearest attachment)", p.Candidates)
	}
	if len(p.Instances) != 2 || p.Instances[0] != "cat" || p.Instances[1] != "wolf" {
		t.Errorf("instances = %v, want [cat wolf]", p.Instances)
	}
}
