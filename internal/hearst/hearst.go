// Package hearst implements the tokenizer and the Hearst "such as" pattern
// parser the iterative extractor runs on (paper Sec 2.1).
//
// The parser is deliberately *naive* in exactly the way the paper
// describes: it proposes every noun phrase to the left of "such as" as a
// candidate concept when the head is concept-preposition-concept
// ("animal from country such as ..."), and it attaches "such as" to the
// *nearest* noun phrase when the head uses "other than" — which mis-parses
// "animals other than dogs such as cats" into (cat isA dog), the paper's
// Accidental-DP example. Resolving among multiple candidates is not the
// parser's job; that is what the semantic-based iterations do.
package hearst

import "strings"

// Parse is the result of parsing one sentence.
type Parse struct {
	SentenceID int
	// Candidates are the candidate concept tokens, in sentence order. One
	// candidate means the sentence is unambiguous.
	Candidates []string
	// Instances are the candidate instance tokens after "such as".
	Instances []string
	// OtherThan marks the mis-parse-hazard construction for diagnostics.
	OtherThan bool
}

// Ambiguous reports whether the parse has more than one candidate concept.
func (p *Parse) Ambiguous() bool { return len(p.Candidates) > 1 }

// leadInWords are discourse lead-ins stripped before the concept head.
var leadInWords = map[string]bool{
	"many": true, "common": true, "popular": true, "various": true,
	"some": true, "several": true, "most": true,
}

// prepositions connect a head concept to a modifier concept.
var prepositions = map[string]bool{"from": true, "in": true, "of": true}

// Tokenize splits a sentence into tokens on whitespace. Commas and the
// final period are expected to be their own tokens (as the corpus
// generator emits them).
func Tokenize(s string) []string { return strings.Fields(s) }

// ParseSentence parses one Hearst-pattern sentence. Four patterns are
// recognized:
//
//	forward:  "C such as e1 , e2 and e3 ."
//	          "C including e1 , e2 and e3 ."
//	          "C , especially e1 and e2 ."
//	reversed: "e1 , e2 and other C ."
//
// It returns ok=false when no well-formed pattern is present.
func ParseSentence(id int, text string) (Parse, bool) {
	return parseTokens(id, Tokenize(text))
}

func parseTokens(id int, tokens []string) (Parse, bool) {
	if cut, width := findForwardMarker(tokens); cut >= 0 {
		left := trimTrailingComma(tokens[:cut])
		right := tokens[cut+width:]
		candidates, otherThan, ok := parseHead(left)
		if !ok {
			return Parse{}, false
		}
		instances := parseInstanceList(right)
		if len(instances) == 0 {
			return Parse{}, false
		}
		return Parse{
			SentenceID: id,
			Candidates: candidates,
			Instances:  instances,
			OtherThan:  otherThan,
		}, true
	}
	if cut := findAndOther(tokens); cut >= 0 {
		instances := parseInstanceList(tokens[:cut])
		head := stripPeriod(tokens[cut+2:])
		candidates, otherThan, ok := parseHead(head)
		if !ok || otherThan || len(instances) == 0 {
			return Parse{}, false
		}
		return Parse{
			SentenceID: id,
			Candidates: candidates,
			Instances:  instances,
		}, true
	}
	return Parse{}, false
}

// findForwardMarker locates the first forward pattern marker and returns
// its index and token width, or (-1, 0).
func findForwardMarker(tokens []string) (idx, width int) {
	for i := 0; i < len(tokens); i++ {
		switch tokens[i] {
		case "such":
			if i+1 < len(tokens) && tokens[i+1] == "as" {
				return i, 2
			}
		case "including", "especially":
			return i, 1
		}
	}
	return -1, 0
}

// findAndOther locates the "and other" bigram of the reversed pattern.
func findAndOther(tokens []string) int {
	for i := 0; i+2 < len(tokens); i++ {
		if tokens[i] == "and" && tokens[i+1] == "other" {
			return i
		}
	}
	return -1
}

func trimTrailingComma(tokens []string) []string {
	if n := len(tokens); n > 0 && tokens[n-1] == "," {
		return tokens[:n-1]
	}
	return tokens
}

func stripPeriod(tokens []string) []string {
	if n := len(tokens); n > 0 && tokens[n-1] == "." {
		return tokens[:n-1]
	}
	return tokens
}

// parseHead interprets the tokens before "such as".
//
// Grammar (after stripping lead-ins):
//
//	NP                       -> candidates {NP}
//	NP  prep        NP'      -> candidates {NP, NP'}
//	NP  other than  NP'      -> candidates {NP'}   (naive nearest attachment)
func parseHead(left []string) (candidates []string, otherThan, ok bool) {
	for len(left) > 0 && leadInWords[left[0]] {
		left = left[1:]
	}
	switch {
	case len(left) == 1:
		return []string{left[0]}, false, true
	case len(left) == 3 && prepositions[left[1]]:
		return []string{left[0], left[2]}, false, true
	case len(left) == 4 && left[1] == "other" && left[2] == "than":
		// The flaw: "such as" attaches to the nearest noun phrase.
		return []string{left[3]}, true, true
	default:
		return nil, false, false
	}
}

// parseInstanceList reads "e1 , e2 and e3 ." style token lists.
func parseInstanceList(right []string) []string {
	var out []string
	for _, tok := range right {
		switch tok {
		case ",", "and", ".", "":
			continue
		default:
			out = append(out, tok)
		}
	}
	return dedup(out)
}

func dedup(xs []string) []string {
	seen := make(map[string]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
