// Package kpca implements the kernel Principal Component Analysis of
// Sec 3.3.1 (Schölkopf et al., 1998): a non-linear mapping of the raw
// 4-dimensional DP features into a Hilbert space, followed by PCA on the
// centered kernel matrix. Its purpose in the paper is to prevent a
// detector trained on the rule-labeled seeds — whose labels are built
// from the mutual-exclusion relation — from over-fitting to the single f2
// dimension.
//
// Only the top MaxComponents eigenpairs are consumed, so the default
// eigensolver (Config.Solver = SolverTopK) recovers exactly that many
// eigenvectors via linalg.EigenSymTopK; SolverJacobi is the full-spectrum
// escape hatch, kept bit-identical to the pre-top-k pipeline and used as
// the oracle by the differential test suite.
package kpca

import (
	"fmt"
	"math"
	"sort"

	"driftclean/internal/linalg"
)

// Solver selects the eigendecomposition backend Fit runs on the
// centered kernel matrix.
type Solver int

const (
	// SolverTopK — the default — tridiagonalizes the kernel matrix and
	// recovers eigenvectors only for the component budget via
	// linalg.EigenSymTopK. KPCA consumes at most MaxComponents
	// components, so paying Jacobi's full-spectrum O(n³)-per-sweep cost
	// was the analyze stage's dominant waste.
	SolverTopK Solver = iota
	// SolverJacobi is the full cyclic Jacobi eigendecomposition
	// (linalg.EigenSym): the escape hatch that reproduces the pre-top-k
	// pipeline output bit for bit, and the oracle the differential test
	// suite checks SolverTopK against.
	SolverJacobi
)

// String names the solver the way the bench artifact spells it.
func (s Solver) String() string {
	switch s {
	case SolverTopK:
		return "topk"
	case SolverJacobi:
		return "jacobi"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Config controls the transformation.
type Config struct {
	// Gamma is the RBF kernel width k(x,y) = exp(-gamma*||x-y||²).
	// Gamma <= 0 selects the median heuristic: 1 / (2·median²) over
	// pairwise training distances.
	Gamma float64
	// MaxComponents caps the output dimensionality r; 0 means no cap.
	MaxComponents int
	// MinEigenvalue discards components with eigenvalues below this
	// multiple of the largest eigenvalue.
	MinEigenvalue float64
	// Solver picks the eigensolver backend; the zero value is the top-k
	// path. SolverJacobi is the full-spectrum escape hatch.
	Solver Solver
	// Kernel32 computes the training kernel matrix from float32
	// coordinates in cache-blocked tiles. At million-sentence scales the
	// O(n²·d) kernel build reads the training block n times over; the
	// float32 copy halves that traffic and the tiling keeps both operands
	// resident. The kernel entries still go through a float64 exp, so the
	// error is bounded by float32 rounding of the squared distances
	// (~1e-7 relative) — inside the golden-file epsilon, but off by
	// default so the default path stays bit-identical.
	Kernel32 bool
}

// DefaultConfig caps the representation at 12 components — enough
// kernel-space expressiveness for the 5 raw features while keeping the
// multi-task W matrices small.
func DefaultConfig() Config {
	return Config{Gamma: 0, MaxComponents: 12, MinEigenvalue: 1e-8}
}

// Transform is a fitted kernel-PCA mapping.
type Transform struct {
	train  [][]float64 // standardized training points
	means  []float64
	stds   []float64
	gamma  float64
	alphas *linalg.Matrix // n×r normalized eigenvector coefficients
	rowMNs []float64      // row means of the uncentered kernel matrix
	allMN  float64        // grand mean of the uncentered kernel matrix
	r      int
}

// Fit learns the transformation from training feature vectors. It returns
// an error when fewer than two points are supplied.
func Fit(x [][]float64, cfg Config) (*Transform, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("kpca: need at least 2 training points, got %d", n)
	}
	if cfg.MaxComponents <= 0 {
		cfg.MaxComponents = n
	}
	if cfg.MinEigenvalue <= 0 {
		cfg.MinEigenvalue = DefaultConfig().MinEigenvalue
	}
	d := len(x[0])
	t := &Transform{}
	t.means, t.stds = columnStats(x)
	t.train = make([][]float64, n)
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("kpca: ragged input: row %d has %d features, want %d", i, len(row), d)
		}
		t.train[i] = t.standardize(row)
	}
	t.gamma = cfg.Gamma
	if t.gamma <= 0 {
		t.gamma = medianHeuristic(t.train)
	}

	// Uncentered kernel matrix, filled through the flat backing array.
	k := linalg.NewMatrix(n, n)
	if cfg.Kernel32 {
		fillKernel32(k, t.train, t.gamma)
	} else {
		kd := k.Data
		for i := 0; i < n; i++ {
			kd[i*n+i] = 1
			for j := i + 1; j < n; j++ {
				v := t.kernel(t.train[i], t.train[j])
				kd[i*n+j] = v
				kd[j*n+i] = v
			}
		}
	}
	// Save means for centering test points, then center: K' = HKH.
	kc, rowMNs, allMN := centerKernel(k)
	t.rowMNs, t.allMN = rowMNs, allMN

	// The component budget r is at most MaxComponents, so the default
	// solver only recovers that many eigenvectors; Jacobi is the
	// full-spectrum escape hatch (and the differential-test oracle).
	var vals []float64
	var vecs *linalg.Matrix
	if cfg.Solver == SolverJacobi {
		vals, vecs = linalg.EigenSym(kc)
	} else {
		budget := cfg.MaxComponents
		if budget > n {
			budget = n
		}
		vals, vecs = linalg.EigenSymTopK(kc, budget)
	}
	if len(vals) == 0 || vals[0] <= 0 {
		return nil, fmt.Errorf("kpca: centered kernel matrix has no positive eigenvalues")
	}
	r := 0
	for r < len(vals) && r < cfg.MaxComponents && vals[r] > cfg.MinEigenvalue*vals[0] {
		r++
	}
	t.r = r
	// Normalize eigenvectors so projected coordinates have unit variance
	// structure: alpha_p = v_p / sqrt(lambda_p). vecs is n×n from Jacobi
	// but only n×budget from the top-k path, so the row stride differs.
	t.alphas = linalg.NewMatrix(n, r)
	ad, vd, stride := t.alphas.Data, vecs.Data, vecs.Cols
	for p := 0; p < r; p++ {
		scale := 1 / math.Sqrt(vals[p])
		for i := 0; i < n; i++ {
			ad[i*r+p] = vd[i*stride+p] * scale
		}
	}
	return t, nil
}

// fillKernel32 fills the uncentered RBF kernel matrix from a float32
// copy of the standardized training points, tiled so both operand blocks
// stay cache-resident. Squared distances accumulate in float32 — the
// precision knob — while the exponential and the stored entry remain
// float64.
func fillKernel32(k *linalg.Matrix, train [][]float64, gamma float64) {
	n := len(train)
	d := 0
	if n > 0 {
		d = len(train[0])
	}
	flat := make([]float32, n*d)
	for i, row := range train {
		dst := flat[i*d : (i+1)*d : (i+1)*d]
		for j, v := range row {
			dst[j] = float32(v)
		}
	}
	const tile = 64
	kd := k.Data
	for ib := 0; ib < n; ib += tile {
		iend := ib + tile
		if iend > n {
			iend = n
		}
		for jb := ib; jb < n; jb += tile {
			jend := jb + tile
			if jend > n {
				jend = n
			}
			for i := ib; i < iend; i++ {
				xi := flat[i*d : (i+1)*d : (i+1)*d]
				jstart := jb
				if jstart <= i {
					jstart = i + 1
				}
				for j := jstart; j < jend; j++ {
					xj := flat[j*d : (j+1)*d : (j+1)*d]
					var d2 float32
					for c, v := range xi {
						diff := v - xj[c]
						d2 += diff * diff
					}
					v := math.Exp(-gamma * float64(d2))
					kd[i*n+j] = v
					kd[j*n+i] = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		kd[i*n+i] = 1
	}
}

// Components returns the output dimensionality r.
func (t *Transform) Components() int { return t.r }

// Gamma returns the fitted kernel width.
func (t *Transform) Gamma() float64 { return t.gamma }

// Project maps one raw feature vector into the r-dimensional KPCA space.
func (t *Transform) Project(x []float64) []float64 {
	out := make([]float64, t.r)
	t.projectInto(x, out, newScratch(t))
	return out
}

// ProjectAll maps a batch of raw feature vectors. The kernel-row and
// standardization scratch buffers are allocated once and reused across
// points, and the output rows share one backing array — batch projection
// costs two scratch slices plus the result instead of a kernel row per
// point.
func (t *Transform) ProjectAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	if len(x) == 0 {
		return out
	}
	sc := newScratch(t)
	flat := make([]float64, len(x)*t.r)
	for i, row := range x {
		o := flat[i*t.r : (i+1)*t.r : (i+1)*t.r]
		t.projectInto(row, o, sc)
		out[i] = o
	}
	return out
}

// scratch holds the per-projection working buffers: the standardized
// input and the kernel row against the training points.
type scratch struct {
	z  []float64
	kx []float64
}

func newScratch(t *Transform) *scratch {
	d := 0
	if len(t.train) > 0 {
		d = len(t.train[0])
	}
	return &scratch{z: make([]float64, d), kx: make([]float64, len(t.train))}
}

// projectInto computes one projection into out (len t.r, zeroed). The
// arithmetic matches the original per-point formulation operation for
// operation: the centered kernel row entries are the same expressions,
// and each out[p] accumulates over i in ascending order exactly as the
// p-outer loop did — only the loop nest is inverted so the alphas matrix
// is walked row-major.
func (t *Transform) projectInto(x, out []float64, sc *scratch) {
	z := sc.z
	for i, v := range x {
		z[i] = (v - t.means[i]) / t.stds[i]
	}
	n := len(t.train)
	// Kernel row against training points, centered consistently with Fit.
	kx := sc.kx
	var mean float64
	for i, tr := range t.train {
		kx[i] = t.kernel(z, tr)
		mean += kx[i]
	}
	mean /= float64(n)
	r := t.r
	ad := t.alphas.Data
	for i := 0; i < n; i++ {
		centered := kx[i] - mean - t.rowMNs[i] + t.allMN
		arow := ad[i*r : i*r+r : i*r+r]
		for p, a := range arow {
			out[p] += a * centered
		}
	}
}

// centerKernel applies the double-centering K' = HKH (H = I − 11ᵀ/n) to
// a square kernel matrix, returning the centered matrix together with
// the row means and grand mean of the input — the statistics Project
// needs to center out-of-sample kernel rows consistently. Centering is
// idempotent: an already-centered matrix has zero row means and a zero
// grand mean, so a second application is the identity.
func centerKernel(k *linalg.Matrix) (kc *linalg.Matrix, rowMeans []float64, grandMean float64) {
	n := k.Rows
	rowMeans = make([]float64, n)
	kd := k.Data
	for i := 0; i < n; i++ {
		row := kd[i*n : i*n+n : i*n+n]
		var s float64
		for _, v := range row {
			s += v
		}
		rowMeans[i] = s / float64(n)
		grandMean += s
	}
	grandMean /= float64(n * n)
	kc = linalg.NewMatrix(n, n)
	cd := kc.Data
	for i := 0; i < n; i++ {
		row := kd[i*n : i*n+n : i*n+n]
		crow := cd[i*n : i*n+n : i*n+n]
		rm := rowMeans[i]
		for j, v := range row {
			crow[j] = v - rm - rowMeans[j] + grandMean
		}
	}
	return kc, rowMeans, grandMean
}

func (t *Transform) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-t.gamma * d2)
}

func (t *Transform) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - t.means[i]) / t.stds[i]
	}
	return out
}

func columnStats(x [][]float64) (means, stds []float64) {
	n := float64(len(x))
	d := len(x[0])
	means = make([]float64, d)
	stds = make([]float64, d)
	for _, row := range x {
		for i, v := range row {
			means[i] += v
		}
	}
	for i := range means {
		means[i] /= n
	}
	for _, row := range x {
		for i, v := range row {
			diff := v - means[i]
			stds[i] += diff * diff
		}
	}
	for i := range stds {
		stds[i] = math.Sqrt(stds[i] / n)
		if stds[i] < 1e-12 {
			stds[i] = 1 // constant feature: leave centered values at 0
		}
	}
	return means, stds
}

// medianHeuristic returns 1/(2·median²) of pairwise distances, the
// standard RBF width choice. Quadratic in n; sampled above 512 points.
func medianHeuristic(x [][]float64) float64 {
	n := len(x)
	step := 1
	if n > 512 {
		step = n / 512
	}
	m := (n + step - 1) / step
	dists := make([]float64, 0, m*(m-1)/2)
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			var d2 float64
			for k := range x[i] {
				diff := x[i][k] - x[j][k]
				d2 += diff * diff
			}
			dists = append(dists, math.Sqrt(d2))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med < 1e-9 {
		return 1
	}
	return 1 / (2 * med * med)
}
