// Package kpca implements the full-rank kernel Principal Component
// Analysis of Sec 3.3.1 (Schölkopf et al., 1998): a non-linear mapping of
// the raw 4-dimensional DP features into a Hilbert space, followed by PCA
// on the centered kernel matrix. Its purpose in the paper is to prevent a
// detector trained on the rule-labeled seeds — whose labels are built
// from the mutual-exclusion relation — from over-fitting to the single f2
// dimension.
package kpca

import (
	"fmt"
	"math"
	"sort"

	"driftclean/internal/linalg"
)

// Config controls the transformation.
type Config struct {
	// Gamma is the RBF kernel width k(x,y) = exp(-gamma*||x-y||²).
	// Gamma <= 0 selects the median heuristic: 1 / (2·median²) over
	// pairwise training distances.
	Gamma float64
	// MaxComponents caps the output dimensionality r; 0 means no cap.
	MaxComponents int
	// MinEigenvalue discards components with eigenvalues below this
	// multiple of the largest eigenvalue.
	MinEigenvalue float64
}

// DefaultConfig caps the representation at 12 components — enough
// kernel-space expressiveness for the 5 raw features while keeping the
// multi-task W matrices small.
func DefaultConfig() Config {
	return Config{Gamma: 0, MaxComponents: 12, MinEigenvalue: 1e-8}
}

// Transform is a fitted kernel-PCA mapping.
type Transform struct {
	train  [][]float64 // standardized training points
	means  []float64
	stds   []float64
	gamma  float64
	alphas *linalg.Matrix // n×r normalized eigenvector coefficients
	rowMNs []float64      // row means of the uncentered kernel matrix
	allMN  float64        // grand mean of the uncentered kernel matrix
	r      int
}

// Fit learns the transformation from training feature vectors. It returns
// an error when fewer than two points are supplied.
func Fit(x [][]float64, cfg Config) (*Transform, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("kpca: need at least 2 training points, got %d", n)
	}
	if cfg.MaxComponents <= 0 {
		cfg.MaxComponents = n
	}
	if cfg.MinEigenvalue <= 0 {
		cfg.MinEigenvalue = DefaultConfig().MinEigenvalue
	}
	d := len(x[0])
	t := &Transform{}
	t.means, t.stds = columnStats(x)
	t.train = make([][]float64, n)
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("kpca: ragged input: row %d has %d features, want %d", i, len(row), d)
		}
		t.train[i] = t.standardize(row)
	}
	t.gamma = cfg.Gamma
	if t.gamma <= 0 {
		t.gamma = medianHeuristic(t.train)
	}

	// Uncentered kernel matrix, filled through the flat backing array.
	k := linalg.NewMatrix(n, n)
	kd := k.Data
	for i := 0; i < n; i++ {
		kd[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			v := t.kernel(t.train[i], t.train[j])
			kd[i*n+j] = v
			kd[j*n+i] = v
		}
	}
	// Save means for centering test points, then center: K' = HKH.
	kc, rowMNs, allMN := centerKernel(k)
	t.rowMNs, t.allMN = rowMNs, allMN

	vals, vecs := linalg.EigenSym(kc)
	if len(vals) == 0 || vals[0] <= 0 {
		return nil, fmt.Errorf("kpca: centered kernel matrix has no positive eigenvalues")
	}
	r := 0
	for r < len(vals) && r < cfg.MaxComponents && vals[r] > cfg.MinEigenvalue*vals[0] {
		r++
	}
	t.r = r
	// Normalize eigenvectors so projected coordinates have unit variance
	// structure: alpha_p = v_p / sqrt(lambda_p).
	t.alphas = linalg.NewMatrix(n, r)
	ad, vd := t.alphas.Data, vecs.Data
	for p := 0; p < r; p++ {
		scale := 1 / math.Sqrt(vals[p])
		for i := 0; i < n; i++ {
			ad[i*r+p] = vd[i*n+p] * scale
		}
	}
	return t, nil
}

// Components returns the output dimensionality r.
func (t *Transform) Components() int { return t.r }

// Gamma returns the fitted kernel width.
func (t *Transform) Gamma() float64 { return t.gamma }

// Project maps one raw feature vector into the r-dimensional KPCA space.
func (t *Transform) Project(x []float64) []float64 {
	out := make([]float64, t.r)
	t.projectInto(x, out, newScratch(t))
	return out
}

// ProjectAll maps a batch of raw feature vectors. The kernel-row and
// standardization scratch buffers are allocated once and reused across
// points, and the output rows share one backing array — batch projection
// costs two scratch slices plus the result instead of a kernel row per
// point.
func (t *Transform) ProjectAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	if len(x) == 0 {
		return out
	}
	sc := newScratch(t)
	flat := make([]float64, len(x)*t.r)
	for i, row := range x {
		o := flat[i*t.r : (i+1)*t.r : (i+1)*t.r]
		t.projectInto(row, o, sc)
		out[i] = o
	}
	return out
}

// scratch holds the per-projection working buffers: the standardized
// input and the kernel row against the training points.
type scratch struct {
	z  []float64
	kx []float64
}

func newScratch(t *Transform) *scratch {
	d := 0
	if len(t.train) > 0 {
		d = len(t.train[0])
	}
	return &scratch{z: make([]float64, d), kx: make([]float64, len(t.train))}
}

// projectInto computes one projection into out (len t.r, zeroed). The
// arithmetic matches the original per-point formulation operation for
// operation: the centered kernel row entries are the same expressions,
// and each out[p] accumulates over i in ascending order exactly as the
// p-outer loop did — only the loop nest is inverted so the alphas matrix
// is walked row-major.
func (t *Transform) projectInto(x, out []float64, sc *scratch) {
	z := sc.z
	for i, v := range x {
		z[i] = (v - t.means[i]) / t.stds[i]
	}
	n := len(t.train)
	// Kernel row against training points, centered consistently with Fit.
	kx := sc.kx
	var mean float64
	for i, tr := range t.train {
		kx[i] = t.kernel(z, tr)
		mean += kx[i]
	}
	mean /= float64(n)
	r := t.r
	ad := t.alphas.Data
	for i := 0; i < n; i++ {
		centered := kx[i] - mean - t.rowMNs[i] + t.allMN
		arow := ad[i*r : i*r+r : i*r+r]
		for p, a := range arow {
			out[p] += a * centered
		}
	}
}

// centerKernel applies the double-centering K' = HKH (H = I − 11ᵀ/n) to
// a square kernel matrix, returning the centered matrix together with
// the row means and grand mean of the input — the statistics Project
// needs to center out-of-sample kernel rows consistently. Centering is
// idempotent: an already-centered matrix has zero row means and a zero
// grand mean, so a second application is the identity.
func centerKernel(k *linalg.Matrix) (kc *linalg.Matrix, rowMeans []float64, grandMean float64) {
	n := k.Rows
	rowMeans = make([]float64, n)
	kd := k.Data
	for i := 0; i < n; i++ {
		row := kd[i*n : i*n+n : i*n+n]
		var s float64
		for _, v := range row {
			s += v
		}
		rowMeans[i] = s / float64(n)
		grandMean += s
	}
	grandMean /= float64(n * n)
	kc = linalg.NewMatrix(n, n)
	cd := kc.Data
	for i := 0; i < n; i++ {
		row := kd[i*n : i*n+n : i*n+n]
		crow := cd[i*n : i*n+n : i*n+n]
		rm := rowMeans[i]
		for j, v := range row {
			crow[j] = v - rm - rowMeans[j] + grandMean
		}
	}
	return kc, rowMeans, grandMean
}

func (t *Transform) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-t.gamma * d2)
}

func (t *Transform) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - t.means[i]) / t.stds[i]
	}
	return out
}

func columnStats(x [][]float64) (means, stds []float64) {
	n := float64(len(x))
	d := len(x[0])
	means = make([]float64, d)
	stds = make([]float64, d)
	for _, row := range x {
		for i, v := range row {
			means[i] += v
		}
	}
	for i := range means {
		means[i] /= n
	}
	for _, row := range x {
		for i, v := range row {
			diff := v - means[i]
			stds[i] += diff * diff
		}
	}
	for i := range stds {
		stds[i] = math.Sqrt(stds[i] / n)
		if stds[i] < 1e-12 {
			stds[i] = 1 // constant feature: leave centered values at 0
		}
	}
	return means, stds
}

// medianHeuristic returns 1/(2·median²) of pairwise distances, the
// standard RBF width choice. Quadratic in n; sampled above 512 points.
func medianHeuristic(x [][]float64) float64 {
	n := len(x)
	step := 1
	if n > 512 {
		step = n / 512
	}
	m := (n + step - 1) / step
	dists := make([]float64, 0, m*(m-1)/2)
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			var d2 float64
			for k := range x[i] {
				diff := x[i][k] - x[j][k]
				d2 += diff * diff
			}
			dists = append(dists, math.Sqrt(d2))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med < 1e-9 {
		return 1
	}
	return 1 / (2 * med * med)
}
