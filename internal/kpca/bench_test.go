package kpca

import (
	"math/rand"
	"testing"
)

func benchPoints(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		center := float64(i%2) * 4
		for j := range row {
			row[j] = center + rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

// BenchmarkFit compares the solver and kernel-precision knobs on the
// same point cloud: topk (default), the Jacobi oracle, and the blocked
// float32 kernel build feeding the top-k solver.
func BenchmarkFit(b *testing.B) {
	x := benchPoints(80, 6)
	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"topk", DefaultConfig},
		{"jacobi", func() Config { c := DefaultConfig(); c.Solver = SolverJacobi; return c }},
		{"topk-kernel32", func() Config { c := DefaultConfig(); c.Kernel32 = true; return c }},
	}
	for _, v := range variants {
		cfg := v.cfg()
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fit(x, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProjectAll(b *testing.B) {
	x := benchPoints(80, 6)
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ProjectAll(x)
	}
}
