package kpca

import (
	"math/rand"
	"testing"
)

func benchPoints(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		center := float64(i%2) * 4
		for j := range row {
			row[j] = center + rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

func BenchmarkFit(b *testing.B) {
	x := benchPoints(80, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProjectAll(b *testing.B) {
	x := benchPoints(80, 6)
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ProjectAll(x)
	}
}
