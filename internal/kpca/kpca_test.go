package kpca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoBlobs(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	labels := make([]int, n)
	for i := range x {
		cls := i % 2
		labels[i] = cls
		center := float64(cls) * 6
		x[i] = []float64{
			center + rng.NormFloat64(),
			center + rng.NormFloat64(),
			rng.NormFloat64(),
			rng.NormFloat64(),
		}
	}
	return x, labels
}

func TestFitRejectsTooFewPoints(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}}, DefaultConfig()); err == nil {
		t.Error("Fit with one point should fail")
	}
}

func TestFitRejectsRaggedInput(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}, {1}}, DefaultConfig()); err == nil {
		t.Error("Fit with ragged rows should fail")
	}
}

func TestComponentsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := twoBlobs(rng, 40)
	tr, err := Fit(x, Config{MaxComponents: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Components() > 5 || tr.Components() < 1 {
		t.Errorf("Components = %d, want in [1,5]", tr.Components())
	}
	if got := len(tr.Project(x[0])); got != tr.Components() {
		t.Errorf("projection length %d != components %d", got, tr.Components())
	}
}

func TestProjectionPreservesSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := twoBlobs(rng, 60)
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proj := tr.ProjectAll(x)
	// Class centroids in KPCA space must be farther apart than the
	// average intra-class spread on the first component.
	var mean [2]float64
	var count [2]int
	for i, p := range proj {
		mean[labels[i]] += p[0]
		count[labels[i]]++
	}
	mean[0] /= float64(count[0])
	mean[1] /= float64(count[1])
	var spread float64
	for i, p := range proj {
		d := p[0] - mean[labels[i]]
		spread += d * d
	}
	spread = math.Sqrt(spread / float64(len(proj)))
	gap := math.Abs(mean[0] - mean[1])
	if gap < spread {
		t.Errorf("first-component class gap %v below intra-class spread %v", gap, spread)
	}
}

func TestTrainingProjectionsCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := twoBlobs(rng, 30)
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proj := tr.ProjectAll(x)
	for p := 0; p < tr.Components(); p++ {
		var mean float64
		for _, row := range proj {
			mean += row[p]
		}
		mean /= float64(len(proj))
		if math.Abs(mean) > 1e-6 {
			t.Errorf("component %d training mean %v, want ~0", p, mean)
		}
	}
}

func TestGammaMedianHeuristicPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := twoBlobs(rng, 20)
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Gamma() <= 0 {
		t.Errorf("Gamma = %v, want > 0", tr.Gamma())
	}
}

func TestExplicitGammaRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := twoBlobs(rng, 20)
	tr, err := Fit(x, Config{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Gamma() != 0.5 {
		t.Errorf("Gamma = %v, want 0.5", tr.Gamma())
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	x := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	tr, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.ProjectAll(x) {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("constant feature produced NaN/Inf projection")
			}
		}
	}
}

// Property: projections are deterministic and finite for random data.
func TestQuickProjectFinite(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + int(r.Int31n(20))
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{r.NormFloat64(), r.NormFloat64() * 10, r.Float64(), float64(r.Intn(3))}
		}
		tr, err := Fit(x, DefaultConfig())
		if err != nil {
			return false
		}
		p1 := tr.Project(x[0])
		p2 := tr.Project(x[0])
		for i := range p1 {
			if p1[i] != p2[i] || math.IsNaN(p1[i]) || math.IsInf(p1[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// alignSignsTo flips each component column of got so its projection of
// the first training point matches want's sign — the eigenvector sign is
// the one freedom the two solvers are allowed to disagree on.
func alignSignsTo(want, got [][]float64) {
	if len(want) == 0 {
		return
	}
	for p := range want[0] {
		// Use the row with the largest reference magnitude for a stable
		// sign read.
		best, bestAbs := 0, 0.0
		for i := range want {
			if a := math.Abs(want[i][p]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if want[best][p]*got[best][p] < 0 {
			for i := range got {
				got[i][p] = -got[i][p]
			}
		}
	}
}

// TestSolverEquivalence: the top-k default and the Jacobi escape hatch
// must produce the same fitted transform — same component count, same
// projections up to the per-component sign freedom — on KPCA's own input
// family, not just on the linalg-level differential suite.
func TestSolverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, _ := twoBlobs(rng, 60)
	topk, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jcfg := DefaultConfig()
	jcfg.Solver = SolverJacobi
	jac, err := Fit(x, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if topk.Components() != jac.Components() {
		t.Fatalf("component count differs: topk %d vs jacobi %d", topk.Components(), jac.Components())
	}
	if math.Abs(topk.Gamma()-jac.Gamma()) > 1e-15 {
		t.Fatalf("gamma differs: %v vs %v", topk.Gamma(), jac.Gamma())
	}
	tp := topk.ProjectAll(x)
	jp := jac.ProjectAll(x)
	alignSignsTo(jp, tp)
	for i := range jp {
		for p := range jp[i] {
			if math.Abs(jp[i][p]-tp[i][p]) > 1e-6 {
				t.Fatalf("projection[%d][%d]: jacobi %v vs topk %v", i, p, jp[i][p], tp[i][p])
			}
		}
	}
}

// TestKernel32WithinTolerance: the blocked float32 kernel build changes
// entries by at most float32 rounding of the squared distances, so the
// fitted projections must track the float64 build within a loose bound.
func TestKernel32WithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, _ := twoBlobs(rng, 60)
	f64, err := Fit(x, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := DefaultConfig()
	cfg32.Kernel32 = true
	f32, err := Fit(x, cfg32)
	if err != nil {
		t.Fatal(err)
	}
	if f64.Components() != f32.Components() {
		t.Fatalf("component count differs: float64 %d vs kernel32 %d", f64.Components(), f32.Components())
	}
	p64 := f64.ProjectAll(x)
	p32 := f32.ProjectAll(x)
	alignSignsTo(p64, p32)
	for i := range p64 {
		for p := range p64[i] {
			if math.Abs(p64[i][p]-p32[i][p]) > 1e-3 {
				t.Fatalf("projection[%d][%d]: float64 %v vs kernel32 %v", i, p, p64[i][p], p32[i][p])
			}
		}
	}
}
