package kpca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"driftclean/internal/floats"
	"driftclean/internal/linalg"
)

// quickCfg bounds the number of random cases per property.
var quickCfg = &quick.Config{MaxCount: 40}

// randomPoints generates n d-dimensional points with mild spread — the
// shape of the standardized feature vectors kpca actually sees.
func randomPoints(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

// TestQuickKernelSymmetric: the RBF kernel is symmetric, bounded in
// (0, 1], and exactly 1 on the diagonal — for any gamma and any pair of
// points.
func TestQuickKernelSymmetric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Transform{gamma: 0.1 + rng.Float64()*5}
		a := make([]float64, 5)
		b := make([]float64, 5)
		for i := range a {
			a[i] = rng.NormFloat64() * 3
			b[i] = rng.NormFloat64() * 3
		}
		// exp(-gamma·d²) can underflow to exactly 0 for distant points,
		// so the lower bound is inclusive.
		ab, ba, aa := tr.kernel(a, b), tr.kernel(b, a), tr.kernel(a, a)
		return floats.Equal(ab, ba) && floats.Equal(aa, 1) && ab >= 0 && ab <= 1
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCenteringIdempotent: double-centering a kernel matrix leaves
// zero row means and a zero grand mean, so centering an already-centered
// matrix is the identity.
func TestQuickCenteringIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		k := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			k.Set(i, i, 1)
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
		kc, _, _ := centerKernel(k)
		kc2, rowMeans, grand := centerKernel(kc)
		if !floats.IsZero(grand) {
			return false
		}
		for _, m := range rowMeans {
			if !floats.IsZero(m) {
				return false
			}
		}
		for i := range kc.Data {
			if !floats.Equal(kc.Data[i], kc2.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCenteringPreservesSymmetry: HKH of a symmetric matrix is
// symmetric.
func TestQuickCenteringPreservesSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		k := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Float64()
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
		kc, _, _ := centerKernel(k)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !floats.Equal(kc.At(i, j), kc.At(j, i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectionDimensions: a fitted transform never exceeds
// MaxComponents, and Project/ProjectAll always emit exactly
// Components() coordinates regardless of the input batch.
func TestQuickProjectionDimensions(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		d := 2 + rng.Intn(5)
		maxC := 1 + rng.Intn(8)
		x := randomPoints(seed, n, d)
		tr, err := Fit(x, Config{MaxComponents: maxC})
		if err != nil {
			return false
		}
		if tr.Components() < 1 || tr.Components() > maxC {
			return false
		}
		fresh := randomPoints(seed+1, 3, d)
		for _, p := range tr.ProjectAll(fresh) {
			if len(p) != tr.Components() {
				return false
			}
		}
		return len(tr.Project(x[0])) == tr.Components()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectedTrainingMeanIsZero: KPCA centers feature space, so
// the training points' projections must average to zero per component.
func TestQuickProjectedTrainingMeanIsZero(t *testing.T) {
	prop := func(seed int64) bool {
		x := randomPoints(seed, 12, 4)
		tr, err := Fit(x, Config{MaxComponents: 6})
		if err != nil {
			return false
		}
		proj := tr.ProjectAll(x)
		for p := 0; p < tr.Components(); p++ {
			var mean float64
			for i := range proj {
				mean += proj[i][p]
			}
			mean /= float64(len(proj))
			if !floats.EqualTol(mean, 0, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
