// Package bench times the end-to-end pipeline — world → corpus →
// extraction → analysis → cleaning — at several scales, once on the
// serial path (Parallelism = 1) and once with the worker pools engaged,
// and reports the comparison as the BENCH_pipeline.json artifact.
//
// Beyond wall times, every A/B pair double-checks the project's central
// parallelism guarantee: both runs must end in byte-identical knowledge
// bases (compared by pair fingerprint). A benchmark that got faster by
// drifting nondeterministic would defeat the whole point of the paper's
// reproduction, so Identical is part of the artifact schema.
package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"driftclean/internal/core"
	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/kpca"
	"driftclean/internal/world"
)

// Scale is one benchmarked pipeline size.
type Scale struct {
	// Name labels the scale in the artifact ("small", "medium", ...).
	Name string `json:"name"`
	// Sentences is the corpus size.
	Sentences int `json:"sentences"`
	// CleanRounds caps the detect-and-clean rounds timed at this scale
	// (each round re-runs the full analysis, the dominant cost).
	CleanRounds int `json:"clean_rounds"`
	// Solver selects the KPCA eigensolver: "" or "topk" for the top-k
	// production path, "jacobi" for the full-spectrum oracle (the
	// escape hatch). Part of the scale identity, so -check never
	// compares fingerprints across solvers.
	Solver string `json:"solver,omitempty"`
}

// DefaultScales returns the standard benchmark ladder. The top rung
// matches the default experiment corpus.
func DefaultScales() []Scale {
	return []Scale{
		{Name: "small", Sentences: 12000, CleanRounds: 1},
		{Name: "medium", Sentences: 40000, CleanRounds: 1},
		{Name: "large", Sentences: 120000, CleanRounds: 1},
	}
}

// SmokeScales returns the single tiny scale the CI smoke run uses.
func SmokeScales() []Scale {
	return []Scale{{Name: "smoke", Sentences: 6000, CleanRounds: 1}}
}

// JacobiTwins returns copies of the given scales pinned to the Jacobi
// oracle solver, names suffixed "-jacobi". Benchmarking a scale next to
// its twin is the before/after comparison for the top-k eigensolver.
func JacobiTwins(scales []Scale) []Scale {
	twins := make([]Scale, len(scales))
	for i, sc := range scales {
		sc.Name += "-jacobi"
		sc.Solver = "jacobi"
		twins[i] = sc
	}
	return twins
}

// StageSeconds breaks one run's wall time down by pipeline stage.
type StageSeconds struct {
	World   float64 `json:"world_s"`
	Corpus  float64 `json:"corpus_s"`
	Extract float64 `json:"extract_s"`
	Analyze float64 `json:"analyze_s"`
	Clean   float64 `json:"clean_s"`
	Total   float64 `json:"total_s"`
}

// StageMem is the heap usage of one pipeline stage: AllocMB is the heap
// allocated during the stage (MiB), Mallocs the allocation count. Both
// are deltas of runtime.MemStats totals read at the stage boundaries.
type StageMem struct {
	AllocMB float64 `json:"alloc_mb"`
	Mallocs uint64  `json:"mallocs"`
}

// StageMems breaks one run's allocation behavior down by stage, so a
// memory regression localizes to the stage that caused it instead of
// hiding inside the run totals.
type StageMems struct {
	World   StageMem `json:"world"`
	Corpus  StageMem `json:"corpus"`
	Extract StageMem `json:"extract"`
	Analyze StageMem `json:"analyze"`
	Clean   StageMem `json:"clean"`
}

// RunStats reports one timed pipeline run.
type RunStats struct {
	// Parallelism is the worker count the run was configured with.
	Parallelism int          `json:"parallelism"`
	Stages      StageSeconds `json:"stages"`
	// StageMem breaks AllocMB/Mallocs down per stage.
	StageMem StageMems `json:"stage_mem"`
	// AllocMB is the heap allocated over the run (MiB); Mallocs the
	// allocation count. Both are deltas of runtime.MemStats totals.
	AllocMB float64 `json:"alloc_mb"`
	Mallocs uint64  `json:"mallocs"`
	// Pairs and Fingerprint identify the final (cleaned) KB state; the
	// serial and parallel runs of a scale must agree on both.
	Pairs       int    `json:"kb_pairs"`
	Fingerprint string `json:"kb_fingerprint"`
}

// ScaleResult pairs the serial and parallel runs of one scale.
type ScaleResult struct {
	Scale
	Serial   RunStats `json:"serial"`
	Parallel RunStats `json:"parallel"`
	// Speedup is serial total time over parallel total time.
	Speedup float64 `json:"speedup"`
	// Identical reports that both runs produced the same KB. It must be
	// true; the field exists so the artifact proves it was checked.
	Identical bool `json:"identical"`
}

// Result is the full artifact written to BENCH_pipeline.json.
type Result struct {
	// GeneratedUnix is the artifact creation time (Unix seconds).
	GeneratedUnix int64 `json:"generated_unix"`
	// CPUs records the machine the numbers came from: speedups are only
	// expected to be meaningful with 4+ cores.
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// ParallelWorkers is the worker count of every parallel arm:
	// NumCPU, floored at 4 so the concurrent code paths (and the
	// determinism A/B) are exercised even on small CI machines.
	ParallelWorkers int           `json:"parallel_workers"`
	Scales          []ScaleResult `json:"scales"`
	// Ingest holds the incremental-ingest scenarios (RunIngest), when
	// the run included any.
	Ingest []IngestResult `json:"ingest,omitempty"`
}

// parallelWorkers picks the worker count for the parallel arm.
func parallelWorkers() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// Run times every scale serially and in parallel and assembles the
// artifact. progress, when non-nil, receives one human-readable line per
// completed run.
func Run(scales []Scale, progress func(string)) *Result {
	res := &Result{
		GeneratedUnix:   time.Now().Unix(),
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		GoVersion:       runtime.Version(),
		ParallelWorkers: parallelWorkers(),
	}
	for _, sc := range scales {
		sr := ScaleResult{Scale: sc}
		sr.Serial = timeRun(sc, 1)
		report(progress, sc, sr.Serial)
		sr.Parallel = timeRun(sc, res.ParallelWorkers)
		report(progress, sc, sr.Parallel)
		if sr.Parallel.Stages.Total > 0 {
			sr.Speedup = sr.Serial.Stages.Total / sr.Parallel.Stages.Total
		}
		sr.Identical = sr.Serial.Fingerprint == sr.Parallel.Fingerprint &&
			sr.Serial.Pairs == sr.Parallel.Pairs
		res.Scales = append(res.Scales, sr)
	}
	return res
}

func report(progress func(string), sc Scale, rs RunStats) {
	if progress == nil {
		return
	}
	progress(fmt.Sprintf("%-7s p=%-2d  total %6.2fs  (corpus %.2fs, extract %.2fs, analyze %.2fs, clean %.2fs)  %d pairs  mallocs %dk (analyze %dk, clean %dk)",
		sc.Name, rs.Parallelism, rs.Stages.Total,
		rs.Stages.Corpus, rs.Stages.Extract, rs.Stages.Analyze, rs.Stages.Clean, rs.Pairs,
		rs.Mallocs/1000, rs.StageMem.Analyze.Mallocs/1000, rs.StageMem.Clean.Mallocs/1000))
}

// timeRun executes one full pipeline run at the given worker count,
// timing each stage.
func timeRun(sc Scale, parallelism int) RunStats {
	cfg := core.DefaultConfig()
	cfg.Corpus.NumSentences = sc.Sentences
	cfg.Clean.MaxRounds = sc.CleanRounds
	if sc.Solver == "jacobi" {
		cfg.KPCA.Solver = kpca.SolverJacobi
	}
	cfg.Parallelism = parallelism
	cfg.Corpus.Parallelism = parallelism
	cfg.Extract.Parallelism = parallelism
	cfg.Clean.Parallelism = parallelism

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	rs := RunStats{Parallelism: parallelism}
	// memN snapshots are read right at the stage boundaries (the reads are
	// microseconds, far below timer resolution at these scales) so each
	// stage's allocation behavior is reported on its own.
	var mem1, mem2, mem3, mem4, after runtime.MemStats
	t0 := time.Now()
	w := world.New(cfg.World)
	t1 := time.Now()
	runtime.ReadMemStats(&mem1)
	c := corpus.Generate(w, cfg.Corpus)
	t2 := time.Now()
	runtime.ReadMemStats(&mem2)
	ext := extract.Run(c, cfg.Extract)
	t3 := time.Now()
	runtime.ReadMemStats(&mem3)
	sys := &core.System{
		Cfg:        cfg,
		World:      w,
		Corpus:     c,
		Extraction: ext,
		KB:         ext.KB,
		Oracle:     eval.NewOracle(w, c),
	}
	// One explicit analysis pass is timed on its own; the cleaning rounds
	// below re-run it internally as part of detection.
	if _, err := sys.Analyze(sys.KB); err != nil {
		panic(fmt.Sprintf("bench: analyze failed: %v", err))
	}
	t4 := time.Now()
	runtime.ReadMemStats(&mem4)
	if _, err := sys.CleanDPs(core.DetectMultiTask); err != nil {
		panic(fmt.Sprintf("bench: cleaning failed: %v", err))
	}
	t5 := time.Now()

	runtime.ReadMemStats(&after)

	rs.Stages = StageSeconds{
		World:   t1.Sub(t0).Seconds(),
		Corpus:  t2.Sub(t1).Seconds(),
		Extract: t3.Sub(t2).Seconds(),
		Analyze: t4.Sub(t3).Seconds(),
		Clean:   t5.Sub(t4).Seconds(),
		Total:   t5.Sub(t0).Seconds(),
	}
	rs.StageMem = StageMems{
		World:   memDelta(&before, &mem1),
		Corpus:  memDelta(&mem1, &mem2),
		Extract: memDelta(&mem2, &mem3),
		Analyze: memDelta(&mem3, &mem4),
		Clean:   memDelta(&mem4, &after),
	}
	rs.AllocMB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	rs.Mallocs = after.Mallocs - before.Mallocs
	rs.Pairs = sys.KB.NumPairs()
	rs.Fingerprint = Fingerprint(sys.KB)
	return rs
}

// memDelta computes one stage's StageMem from the MemStats snapshots at
// its boundaries.
func memDelta(from, to *runtime.MemStats) StageMem {
	return StageMem{
		AllocMB: float64(to.TotalAlloc-from.TotalAlloc) / (1 << 20),
		Mallocs: to.Mallocs - from.Mallocs,
	}
}

// CheckAgainst compares a freshly produced Result with a previously
// written artifact (typically the committed BENCH_pipeline.json): for
// every scale the two share — matched by name, corpus size and round
// cap — the final KBs must agree on fingerprint and pair count. It
// returns one human-readable line per drift; a non-empty return means
// the byte-identical-output guarantee broke between the two artifacts.
func CheckAgainst(res *Result, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading previous artifact: %w", err)
	}
	var old Result
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing previous artifact %s: %w", path, err)
	}
	oldByName := make(map[string]ScaleResult, len(old.Scales))
	for _, sc := range old.Scales {
		oldByName[sc.Name] = sc
	}
	var drifts []string
	shared := 0
	for _, sc := range res.Scales {
		prev, ok := oldByName[sc.Name]
		if !ok || prev.Sentences != sc.Sentences || prev.CleanRounds != sc.CleanRounds ||
			prev.Solver != sc.Solver {
			continue
		}
		shared++
		if sc.Serial.Fingerprint != prev.Serial.Fingerprint || sc.Serial.Pairs != prev.Serial.Pairs {
			drifts = append(drifts, fmt.Sprintf(
				"scale %s: KB fingerprint %s (%d pairs) != previous %s (%d pairs)",
				sc.Name, sc.Serial.Fingerprint, sc.Serial.Pairs,
				prev.Serial.Fingerprint, prev.Serial.Pairs))
		}
	}
	oldIngest := make(map[string]IngestResult, len(old.Ingest))
	for _, ir := range old.Ingest {
		oldIngest[ir.Name] = ir
	}
	for _, ir := range res.Ingest {
		prev, ok := oldIngest[ir.Name]
		if !ok || prev.IngestScale != ir.IngestScale {
			continue
		}
		shared++
		if ir.Fingerprint != prev.Fingerprint || ir.Pairs != prev.Pairs {
			drifts = append(drifts, fmt.Sprintf(
				"ingest scale %s: KB fingerprint %s (%d pairs) != previous %s (%d pairs)",
				ir.Name, ir.Fingerprint, ir.Pairs, prev.Fingerprint, prev.Pairs))
		}
	}
	if shared == 0 {
		return nil, fmt.Errorf("no shared scales between this run and %s — nothing was checked", path)
	}
	return drifts, nil
}

// Fingerprint hashes a KB's full pair set (with per-pair support counts)
// into a short hex digest. Two KBs with equal fingerprints and pair
// counts are treated as identical for A/B determinism checks.
func Fingerprint(k *kb.KB) string {
	h := fnv.New64a()
	for _, p := range k.Pairs() {
		fmt.Fprintf(h, "%s\x00%s\x00%d\x1f", p.Concept, p.Instance, k.Count(p.Concept, p.Instance))
	}
	fmt.Fprintf(h, "|ex=%d", k.NumExtractions())
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteJSON writes the artifact, pretty-printed, to path.
func (r *Result) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing artifact: %w", err)
	}
	return nil
}
