// Serving benchmark: the driftload harness behind BENCH_serve.json.
//
// One pipeline run builds a KB; the harness then freezes it once and,
// for each configured shard count, partitions that same snapshot behind
// a serve.Router and drives a seeded query mix against it in-process —
// closed-loop (a fixed worker pool, each worker issuing its next query
// as soon as the last returns) and open-loop (a fixed offered rate,
// arrivals independent of completions, the regime where queues actually
// build). Every cell reports exact p50/p99/p999/max latencies computed
// from the full sorted sample, never an approximation.
//
// Before any load runs, the harness fingerprints a canonical response
// set (stats, listings, rankings, point lookups) at every shard count.
// All fingerprints must be identical: sharding is required to be
// invisible in responses, and the artifact proves it was checked — the
// same role Identical plays in the pipeline benchmark.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"driftclean/internal/core"
	"driftclean/internal/corpus"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
	"driftclean/internal/world"
)

// ServeConfig parameterizes one serving-benchmark run.
type ServeConfig struct {
	// Sentences is the corpus size of the KB under load.
	Sentences int
	// ShardCounts is the fleet-size sweep; every count serves the same
	// frozen snapshot.
	ShardCounts []int
	// ClosedWorkers are the closed-loop worker counts swept per shard
	// count.
	ClosedWorkers []int
	// OpenRates are the open-loop offered rates (queries per second)
	// swept per shard count.
	OpenRates []int
	// Duration is the wall time of each load cell.
	Duration time.Duration
	// Seed drives the query mix; equal seeds issue identical query
	// sequences per worker.
	Seed int64
	// CacheSize, MaxInflight and QueueDepth configure every shard
	// service (zero values: default cache, no admission control).
	CacheSize   int
	MaxInflight int
	QueueDepth  int
	// ReloadReplicas is how many co-resident snapshot replicas the
	// reload benchmark holds live for its per-replica heap measurement
	// (0 skips the reload benchmark entirely).
	ReloadReplicas int
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(string)
}

// DefaultServeConfig is the full sweep behind the committed
// BENCH_serve.json.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Sentences:      12000,
		ShardCounts:    []int{1, 2, 4, 8},
		ClosedWorkers:  []int{1, 4, 16},
		OpenRates:      []int{500, 2000},
		Duration:       1500 * time.Millisecond,
		Seed:           1,
		ReloadReplicas: 4,
	}
}

// SmokeServeConfig is the tiny CI sweep; its value is the response-
// identity check across shard counts, not the timings.
func SmokeServeConfig() ServeConfig {
	return ServeConfig{
		Sentences:      3000,
		ShardCounts:    []int{1, 2},
		ClosedWorkers:  []int{4},
		OpenRates:      []int{200},
		Duration:       150 * time.Millisecond,
		Seed:           1,
		ReloadReplicas: 2,
	}
}

// LatencyStats summarizes one cell's latency sample. Percentiles are
// exact order statistics of the sorted sample, in microseconds.
type LatencyStats struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	Shed       int64   `json:"shed"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  int64   `json:"p50_us"`
	P99Micros  int64   `json:"p99_us"`
	P999Micros int64   `json:"p999_us"`
	MaxMicros  int64   `json:"max_us"`
	// ThroughputRPS is completed queries per second of cell wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
}

// ServeCell is one point of the saturation sweep: a (shard count, load
// mode, intensity) combination and its measured latencies.
type ServeCell struct {
	Shards int `json:"shards"`
	// Mode is "closed" (Workers issue back to back) or "open" (arrivals
	// at OfferedRPS regardless of completions).
	Mode       string       `json:"mode"`
	Workers    int          `json:"workers,omitempty"`
	OfferedRPS int          `json:"offered_rps,omitempty"`
	DurationS  float64      `json:"duration_s"`
	Latency    LatencyStats `json:"latency"`
}

// ServeResult is the full artifact written to BENCH_serve.json.
type ServeResult struct {
	GeneratedUnix int64  `json:"generated_unix"`
	CPUs          int    `json:"cpus"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	GoVersion     string `json:"go_version"`
	Sentences     int    `json:"sentences"`
	Seed          int64  `json:"seed"`
	// Concepts and Pairs describe the KB under load.
	Concepts int `json:"concepts"`
	Pairs    int `json:"kb_pairs"`
	// ResponseFingerprint maps each shard count (as a decimal string,
	// JSON keys being strings) to the fingerprint of its canonical
	// response set; Identical asserts they all match.
	ResponseFingerprint map[string]string `json:"response_fingerprint"`
	Identical           bool              `json:"identical"`
	// Reload compares hot-reload latency and per-replica heap between
	// the gob and binary snapshot formats over this run's KB.
	Reload *ReloadStats `json:"reload"`
	Cells  []ServeCell  `json:"cells"`
}

// RunServe builds the KB, verifies response identity across every shard
// count, runs the load sweep and assembles the artifact.
func RunServe(cfg ServeConfig) *ServeResult {
	res := &ServeResult{
		GeneratedUnix:       time.Now().Unix(),
		CPUs:                runtime.NumCPU(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		GoVersion:           runtime.Version(),
		Sentences:           cfg.Sentences,
		Seed:                cfg.Seed,
		ResponseFingerprint: make(map[string]string, len(cfg.ShardCounts)),
	}

	snap, benchKB := buildServeSnapshot(cfg.Sentences)
	res.Concepts = snap.Stats().Concepts
	res.Pairs = snap.NumPairs()
	space := newQuerySpace(snap)
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("snapshot ready: %d concepts, %d pairs", res.Concepts, res.Pairs))
	}

	if cfg.ReloadReplicas > 0 {
		reload, err := measureReload(benchKB, cfg.ReloadReplicas, cfg.Progress)
		if err != nil {
			// The reload comparison is part of the artifact contract;
			// failing to produce it is a failed run, not a partial one.
			panic(fmt.Sprintf("bench: reload measurement failed: %v", err))
		}
		res.Reload = reload
	}

	res.Identical = true
	first := ""
	for _, shards := range cfg.ShardCounts {
		router := buildServeFleet(snap, shards, cfg)
		fp := responseFingerprint(router, space)
		res.ResponseFingerprint[fmt.Sprintf("%d", shards)] = fp
		if first == "" {
			first = fp
		} else if fp != first {
			res.Identical = false
		}
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("shards=%d response fingerprint %s", shards, fp))
		}

		for _, workers := range cfg.ClosedWorkers {
			cell := runClosedCell(buildServeFleet(snap, shards, cfg), space, cfg, shards, workers)
			reportServe(cfg.Progress, cell)
			res.Cells = append(res.Cells, cell)
		}
		for _, rate := range cfg.OpenRates {
			cell := runOpenCell(buildServeFleet(snap, shards, cfg), space, cfg, shards, rate)
			reportServe(cfg.Progress, cell)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// buildServeSnapshot runs world → corpus → extraction and freezes the
// raw extracted KB. Cleaning is skipped: the serving layer is
// indifferent to pair quality, and the uncleaned KB is the larger,
// harder-to-serve one. The KB itself is returned alongside the frozen
// snapshot so the reload benchmark can save it in both on-disk formats;
// Freeze clones, so the returned KB stays independent of the snapshot.
func buildServeSnapshot(sentences int) (*snapshot.Snapshot, *kb.KB) {
	cfg := core.DefaultConfig()
	cfg.Corpus.NumSentences = sentences
	w := world.New(cfg.World)
	c := corpus.Generate(w, cfg.Corpus)
	ext := extract.Run(c, cfg.Extract)
	return snapshot.Freeze(ext.KB), ext.KB
}

// buildServeFleet partitions snap across the shard count behind a
// strict router, exactly as driftserve -shards wires it.
func buildServeFleet(snap *snapshot.Snapshot, shards int, cfg ServeConfig) *serve.Router {
	ring := serve.NewRing(shards, 0)
	parts := snap.Partition(shards, ring.Owner)
	svcs := make([]*serve.Service, shards)
	for i := range svcs {
		svcs[i] = serve.New(parts[i], serve.Options{
			CacheSize:   cfg.CacheSize,
			MaxInflight: cfg.MaxInflight,
			QueueDepth:  cfg.QueueDepth,
		})
	}
	return serve.NewRouter(svcs, ring, serve.RouterOptions{})
}

// querySpace is the concept/instance population queries draw from.
type querySpace struct {
	concepts  []string
	instances [][]string // instances[i] belongs to concepts[i]
}

func newQuerySpace(snap *snapshot.Snapshot) *querySpace {
	qs := &querySpace{concepts: snap.Concepts()}
	qs.instances = make([][]string, len(qs.concepts))
	for i, c := range qs.concepts {
		qs.instances[i] = snap.Instances(c)
	}
	if len(qs.concepts) == 0 {
		panic("bench: serving snapshot has no concepts to query")
	}
	return qs
}

// issue runs one query drawn from rng against the router: a mix that
// touches every endpoint, dominated by the point lookups a serving KB
// actually sees. Returns whether the query was shed by admission.
func (qs *querySpace) issue(ctx context.Context, r *serve.Router, rng *rand.Rand) (shed bool, err error) {
	ci := rng.Intn(len(qs.concepts))
	concept := qs.concepts[ci]
	switch pick := rng.Intn(10); {
	case pick < 4: // 40% instance listings
		_, err = r.Instances(ctx, concept)
	case pick < 7: // 30% explains
		insts := qs.instances[ci]
		if len(insts) == 0 {
			_, err = r.Instances(ctx, concept)
			break
		}
		_, err = r.Explain(ctx, concept, insts[rng.Intn(len(insts))], 3)
	case pick < 8: // 10% concept-scoped drift rankings
		_, err = r.Drifted(ctx, concept, 10)
	case pick < 9: // 10% fleet-wide drift rankings (scatter-gather)
		_, err = r.Drifted(ctx, "", 20)
	default: // 10% concept listings (scatter-gather)
		_, err = r.Concepts(ctx)
	}
	if err != nil && isShed(err) {
		return true, nil
	}
	return false, err
}

// isShed reports whether err is (or wraps) an admission shed.
// ErrOverloaded may arrive wrapped in ErrShard when a gather observed
// the shed on one of its shards.
func isShed(err error) bool {
	return errors.Is(err, serve.ErrOverloaded)
}

// sample accumulates one cell's latencies; guarded by mu because open-
// loop arrivals complete on arbitrary goroutines.
type sample struct {
	mu     sync.Mutex
	nanos  []int64
	errors int64
	shed   int64
}

func (s *sample) add(d time.Duration, shed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case shed:
		s.shed++
	case err != nil:
		s.errors++
	default:
		s.nanos = append(s.nanos, int64(d))
	}
}

// stats reduces the sample to the exported summary.
func (s *sample) stats(wall time.Duration) LatencyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := LatencyStats{
		Count:  int64(len(s.nanos)),
		Errors: s.errors,
		Shed:   s.shed,
	}
	if wall > 0 {
		ls.ThroughputRPS = float64(len(s.nanos)) / wall.Seconds()
	}
	if len(s.nanos) == 0 {
		return ls
	}
	sort.Slice(s.nanos, func(i, j int) bool { return s.nanos[i] < s.nanos[j] })
	var sum int64
	for _, n := range s.nanos {
		sum += n
	}
	us := int64(time.Microsecond)
	ls.MeanMicros = float64(sum) / float64(len(s.nanos)) / float64(us)
	ls.P50Micros = percentile(s.nanos, 0.50) / us
	ls.P99Micros = percentile(s.nanos, 0.99) / us
	ls.P999Micros = percentile(s.nanos, 0.999) / us
	ls.MaxMicros = s.nanos[len(s.nanos)-1] / us
	return ls
}

// percentile returns the exact q-quantile of sorted (nearest-rank on
// the zero-based index).
func percentile(sorted []int64, q float64) int64 {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// runClosedCell drives `workers` goroutines, each issuing queries back
// to back until the cell duration elapses.
func runClosedCell(router *serve.Router, space *querySpace, cfg ServeConfig, shards, workers int) ServeCell {
	var smp sample
	ctx := context.Background()
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				t0 := time.Now()
				shed, err := space.issue(ctx, router, rng)
				smp.add(time.Since(t0), shed, err)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	return ServeCell{
		Shards:    shards,
		Mode:      "closed",
		Workers:   workers,
		DurationS: wall.Seconds(),
		Latency:   smp.stats(wall),
	}
}

// runOpenCell offers queries at a fixed rate for the cell duration:
// arrivals are scheduled on the clock, not gated on completions, so a
// fleet slower than the offered rate accumulates genuine queueing
// delay — the regime where p99/p999 and admission control earn their
// keep.
func runOpenCell(router *serve.Router, space *querySpace, cfg ServeConfig, shards, rate int) ServeCell {
	var smp sample
	ctx := context.Background()
	interval := time.Second / time.Duration(rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	arrivals := int(cfg.Duration / interval)

	// One seeded stream per arrival index keeps the workload independent
	// of completion interleaving.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < arrivals; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729))
			t0 := time.Now()
			shed, err := space.issue(ctx, router, rng)
			smp.add(time.Since(t0), shed, err)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	return ServeCell{
		Shards:     shards,
		Mode:       "open",
		OfferedRPS: rate,
		DurationS:  wall.Seconds(),
		Latency:    smp.stats(wall),
	}
}

// responseFingerprint hashes a canonical response set — stats, the full
// concept listing, fleet-wide and per-concept drift rankings, instance
// listings and a provenance explain per concept — through their JSON
// encodings, so "byte-identical responses" is checked over the literal
// wire format.
func responseFingerprint(router *serve.Router, space *querySpace) string {
	ctx := context.Background()
	h := fnv.New64a()
	feed := func(v any, err error) {
		if err != nil {
			panic(fmt.Sprintf("bench: fingerprint query failed: %v", err))
		}
		b, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("bench: fingerprint encoding failed: %v", err))
		}
		_, _ = h.Write(b)
		_, _ = h.Write([]byte{0x1f})
	}

	st, err := router.Stats(ctx)
	// Generation is process-global state, not response content: two runs
	// of this process freeze different generation numbers for the same
	// KB. The shard-count comparison shares one freeze, but zeroing it
	// also keeps fingerprints comparable across artifact regenerations.
	st.Generation = 0
	feed(st, err)
	cs, err := router.Concepts(ctx)
	feed(cs, err)
	dr, err := router.Drifted(ctx, "", 100)
	feed(dr, err)
	for i, c := range space.concepts {
		ins, err := router.Instances(ctx, c)
		feed(ins, err)
		dr, err := router.Drifted(ctx, c, 5)
		feed(dr, err)
		if insts := space.instances[i]; len(insts) > 0 {
			ex, err := router.Explain(ctx, c, insts[0], 3)
			feed(ex, err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func reportServe(progress func(string), c ServeCell) {
	if progress == nil {
		return
	}
	load := fmt.Sprintf("workers=%d", c.Workers)
	if c.Mode == "open" {
		load = fmt.Sprintf("offered=%drps", c.OfferedRPS)
	}
	progress(fmt.Sprintf("shards=%d %-6s %-14s %7.0f rps  p50 %5dus  p99 %6dus  p999 %6dus  max %6dus  shed %d err %d",
		c.Shards, c.Mode, load, c.Latency.ThroughputRPS,
		c.Latency.P50Micros, c.Latency.P99Micros, c.Latency.P999Micros, c.Latency.MaxMicros,
		c.Latency.Shed, c.Latency.Errors))
}

// ValidateServe checks an artifact's internal consistency: the identity
// gate must have passed, at least two shard counts must have been
// swept, every cell must hold a coherent latency summary. CI runs this
// against the freshly produced smoke artifact so a malformed or
// shortcut run fails loudly.
func ValidateServe(r *ServeResult) error {
	if !r.Identical {
		return fmt.Errorf("bench: response fingerprints diverge across shard counts: %v", r.ResponseFingerprint)
	}
	if len(r.ResponseFingerprint) < 2 {
		return fmt.Errorf("bench: sweep covered %d shard counts, need at least 2 for the identity gate", len(r.ResponseFingerprint))
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("bench: artifact holds no load cells")
	}
	if err := validateReload(r.Reload); err != nil {
		return err
	}
	for i, c := range r.Cells {
		l := c.Latency
		switch {
		case c.Shards < 1:
			return fmt.Errorf("bench: cell %d: invalid shard count %d", i, c.Shards)
		case c.Mode != "closed" && c.Mode != "open":
			return fmt.Errorf("bench: cell %d: unknown mode %q", i, c.Mode)
		case l.Count <= 0:
			return fmt.Errorf("bench: cell %d (%s shards=%d): no completed queries", i, c.Mode, c.Shards)
		case l.P50Micros > l.P99Micros || l.P99Micros > l.P999Micros || l.P999Micros > l.MaxMicros:
			return fmt.Errorf("bench: cell %d: percentiles out of order: p50=%d p99=%d p999=%d max=%d",
				i, l.P50Micros, l.P99Micros, l.P999Micros, l.MaxMicros)
		case l.Errors > 0:
			return fmt.Errorf("bench: cell %d: %d queries failed (sheds are reported separately)", i, l.Errors)
		}
	}
	return nil
}

// validateReload checks the reload comparison: present, coherent
// per-format numbers, and the binary format not slower than gob — the
// whole point of shipping a second snapshot format.
func validateReload(rl *ReloadStats) error {
	if rl == nil {
		return fmt.Errorf("bench: artifact has no reload comparison (gob vs binary)")
	}
	if rl.Replicas < 1 || rl.Iterations < 1 {
		return fmt.Errorf("bench: reload comparison ran %d replicas over %d iterations", rl.Replicas, rl.Iterations)
	}
	for _, f := range []struct {
		name string
		s    ReloadFormatStats
	}{{"gob", rl.Gob}, {"binary", rl.Binary}} {
		switch {
		case f.s.FileBytes <= 0:
			return fmt.Errorf("bench: reload: %s snapshot file is empty", f.name)
		case f.s.ReloadP50Micros < 1 || f.s.ReloadMaxMicros < f.s.ReloadP50Micros:
			return fmt.Errorf("bench: reload: %s latencies incoherent: p50=%dus max=%dus",
				f.name, f.s.ReloadP50Micros, f.s.ReloadMaxMicros)
		case f.s.HeapBytesPerReplica < 0:
			return fmt.Errorf("bench: reload: %s heap per replica negative", f.name)
		}
	}
	if rl.SpeedupX < 1 {
		return fmt.Errorf("bench: reload: binary snapshot reloads %.2fx as fast as gob — it must not be slower", rl.SpeedupX)
	}
	return nil
}

// WriteJSON writes the artifact, pretty-printed, to path.
func (r *ServeResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding serve artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing serve artifact: %w", err)
	}
	return nil
}
