// Reload benchmark: the snapshot-format comparison inside the serving
// artifact. The serving layer hot-reloads by re-opening the KB file and
// swapping the frozen snapshot in; how long that takes — and how much
// heap each co-located replica pays to hold its own copy — is a
// property of the on-disk format. This module measures both formats
// (the gob stream and the zero-copy binary columnar snapshot) over the
// same KB through the same auto-detecting open path the server uses,
// and lands the numbers in BENCH_serve.json next to the latency sweep.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"driftclean/internal/kb"
	"driftclean/internal/kb/binsnap"
	"driftclean/internal/kb/kbio"
	"driftclean/internal/snapshot"
)

// reloadIters is how many timed reloads each format gets; the artifact
// reports exact order statistics of the sample, so a handful suffices
// to shed scheduler noise.
const reloadIters = 7

// ReloadFormatStats are one snapshot format's reload measurements.
type ReloadFormatStats struct {
	// FileBytes is the on-disk snapshot size.
	FileBytes int64 `json:"file_bytes"`
	// ReloadP50Micros and ReloadMaxMicros summarize the time of a full
	// reload — open the file, decode/validate, freeze a serving
	// snapshot — over the timed iterations.
	ReloadP50Micros int64 `json:"reload_p50_us"`
	ReloadMaxMicros int64 `json:"reload_max_us"`
	// HeapBytesPerReplica is the steady-state heap cost of one extra
	// co-resident replica holding this format's snapshot open.
	HeapBytesPerReplica int64 `json:"heap_bytes_per_replica"`
}

// ReloadStats is the gob-versus-binary reload comparison in the serving
// artifact.
type ReloadStats struct {
	// Replicas is how many snapshots were held live for the per-replica
	// heap measurement.
	Replicas int `json:"replicas"`
	// Iterations is the timed-reload sample size per format.
	Iterations int               `json:"iterations"`
	Gob        ReloadFormatStats `json:"gob"`
	Binary     ReloadFormatStats `json:"binary"`
	// SpeedupX is gob reload p50 over binary reload p50: how many times
	// faster the binary snapshot makes a hot reload.
	SpeedupX float64 `json:"speedup_x"`
}

// measureReload saves k in both formats and measures reload latency and
// per-replica heap for each through kbio.FreezeFile — the exact code
// path driftserve's reloader runs.
func measureReload(k *kb.KB, replicas int, progress func(string)) (*ReloadStats, error) {
	dir, err := os.MkdirTemp("", "driftclean-reload-*")
	if err != nil {
		return nil, fmt.Errorf("bench: reload scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)
	gobPath := filepath.Join(dir, "kb.gob")
	binPath := filepath.Join(dir, "kb.bin")
	if err := k.SaveFile(gobPath); err != nil {
		return nil, fmt.Errorf("bench: saving gob snapshot: %w", err)
	}
	if err := binsnap.WriteFile(binPath, k); err != nil {
		return nil, fmt.Errorf("bench: saving binary snapshot: %w", err)
	}

	rs := &ReloadStats{Replicas: replicas, Iterations: reloadIters}
	gobNanos, err := measureReloadFormat(gobPath, replicas, &rs.Gob)
	if err != nil {
		return nil, err
	}
	binNanos, err := measureReloadFormat(binPath, replicas, &rs.Binary)
	if err != nil {
		return nil, err
	}
	rs.SpeedupX = float64(gobNanos) / float64(binNanos)
	if progress != nil {
		progress(fmt.Sprintf("reload: gob %dus (%d KB, %d KB heap/replica)  binary %dus (%d KB, %d KB heap/replica)  speedup %.1fx",
			rs.Gob.ReloadP50Micros, rs.Gob.FileBytes/1024, rs.Gob.HeapBytesPerReplica/1024,
			rs.Binary.ReloadP50Micros, rs.Binary.FileBytes/1024, rs.Binary.HeapBytesPerReplica/1024,
			rs.SpeedupX))
	}
	return rs, nil
}

// measureReloadFormat fills out one format's stats and returns its p50
// reload nanos (unrounded, for the speedup ratio).
func measureReloadFormat(path string, replicas int, out *ReloadFormatStats) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("bench: %w", err)
	}
	out.FileBytes = st.Size()

	// One warm-up load primes the page cache so both formats are timed
	// over warm files — the regime of a server reloading a snapshot it
	// just wrote.
	if _, _, err := kbio.FreezeFile(path); err != nil {
		return 0, fmt.Errorf("bench: reload warm-up of %s: %w", path, err)
	}
	nanos := make([]int64, 0, reloadIters)
	for i := 0; i < reloadIters; i++ {
		t0 := time.Now()
		snap, _, err := kbio.FreezeFile(path)
		d := time.Since(t0)
		if err != nil {
			return 0, fmt.Errorf("bench: timed reload of %s: %w", path, err)
		}
		runtime.KeepAlive(snap)
		nanos = append(nanos, int64(d))
	}
	sort.Slice(nanos, func(i, j int) bool { return nanos[i] < nanos[j] })
	// Sub-microsecond reloads round up to 1µs so the artifact never
	// claims a zero-cost reload (and ratios stay finite).
	p50 := percentile(nanos, 0.50)
	us := int64(time.Microsecond)
	out.ReloadP50Micros = max(p50/us, 1)
	out.ReloadMaxMicros = max(nanos[len(nanos)-1]/us, 1)

	heap, err := heapPerReplica(path, replicas)
	if err != nil {
		return 0, err
	}
	out.HeapBytesPerReplica = heap
	return max(p50, 1), nil
}

// heapPerReplica opens `replicas` independent snapshots of the file and
// reports the settled heap growth per replica. For the gob format each
// replica decodes a private KB graph; for the binary format each holds
// little beyond the string table, the bulk staying in the shared file
// mapping — which is the number this measurement exists to show.
func heapPerReplica(path string, replicas int) (int64, error) {
	settle := func() uint64 {
		// Two GC rounds: the first queues finalizers (which unmap dropped
		// binary views), the second collects what they released.
		runtime.GC()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	before := settle()
	snaps := make([]*snapshot.Snapshot, 0, replicas)
	for i := 0; i < replicas; i++ {
		snap, _, err := kbio.FreezeFile(path)
		if err != nil {
			return 0, fmt.Errorf("bench: replica load of %s: %w", path, err)
		}
		snaps = append(snaps, snap)
	}
	after := settle()
	runtime.KeepAlive(snaps)
	if after <= before {
		return 0, nil
	}
	return int64(after-before) / int64(replicas), nil
}
