package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyServeConfig is the smallest sweep that still exercises the
// identity gate (two shard counts) and both load modes.
func tinyServeConfig() ServeConfig {
	return ServeConfig{
		Sentences:      1200,
		ShardCounts:    []int{1, 3},
		ClosedWorkers:  []int{2},
		OpenRates:      []int{100},
		Duration:       40 * time.Millisecond,
		Seed:           1,
		ReloadReplicas: 2,
	}
}

// TestRunServeProducesCoherentArtifact: one end-to-end harness run must
// pass the identity gate, fill every cell, validate cleanly and
// round-trip through WriteJSON.
func TestRunServeProducesCoherentArtifact(t *testing.T) {
	res := RunServe(tinyServeConfig())

	if !res.Identical {
		t.Fatalf("responses diverged across shard counts: %v", res.ResponseFingerprint)
	}
	if len(res.ResponseFingerprint) != 2 {
		t.Fatalf("fingerprints = %v, want one per shard count", res.ResponseFingerprint)
	}
	if got, want := len(res.Cells), 2*2; got != want {
		t.Fatalf("cells = %d, want %d (2 shard counts x 2 modes)", got, want)
	}
	for _, c := range res.Cells {
		if c.Latency.Count == 0 {
			t.Errorf("cell shards=%d mode=%s completed no queries", c.Shards, c.Mode)
		}
		if c.Latency.Errors != 0 {
			t.Errorf("cell shards=%d mode=%s had %d failed queries", c.Shards, c.Mode, c.Latency.Errors)
		}
	}
	if res.Reload == nil {
		t.Fatal("run produced no reload comparison")
	}
	if res.Reload.Replicas != 2 || res.Reload.Iterations < 1 {
		t.Fatalf("reload comparison shape: %+v", res.Reload)
	}
	if res.Reload.Binary.FileBytes <= 0 || res.Reload.Gob.FileBytes <= 0 {
		t.Fatalf("reload snapshot sizes: %+v", res.Reload)
	}
	if err := ValidateServe(res); err != nil {
		t.Fatalf("ValidateServe on a fresh run: %v", err)
	}

	path := filepath.Join(t.TempDir(), "serve.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

// TestValidateServeRejectsMalformedArtifacts: each coherence rule fires
// on the artifact shape it guards against.
func TestValidateServeRejectsMalformedArtifacts(t *testing.T) {
	good := func() *ServeResult {
		return &ServeResult{
			Identical:           true,
			ResponseFingerprint: map[string]string{"1": "a", "2": "a"},
			Cells: []ServeCell{{
				Shards: 1, Mode: "closed", Workers: 2,
				Latency: LatencyStats{Count: 10, P50Micros: 1, P99Micros: 2, P999Micros: 3, MaxMicros: 4},
			}},
			Reload: &ReloadStats{
				Replicas: 2, Iterations: 7,
				Gob:      ReloadFormatStats{FileBytes: 1000, ReloadP50Micros: 50, ReloadMaxMicros: 60, HeapBytesPerReplica: 4096},
				Binary:   ReloadFormatStats{FileBytes: 500, ReloadP50Micros: 5, ReloadMaxMicros: 6, HeapBytesPerReplica: 1024},
				SpeedupX: 10,
			},
		}
	}
	if err := ValidateServe(good()); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*ServeResult)
		want   string
	}{
		{"diverged", func(r *ServeResult) { r.Identical = false }, "diverge"},
		{"one shard count", func(r *ServeResult) { delete(r.ResponseFingerprint, "2") }, "at least 2"},
		{"no cells", func(r *ServeResult) { r.Cells = nil }, "no load cells"},
		{"no queries", func(r *ServeResult) { r.Cells[0].Latency.Count = 0 }, "no completed queries"},
		{"bad mode", func(r *ServeResult) { r.Cells[0].Mode = "sideways" }, "unknown mode"},
		{"bad shards", func(r *ServeResult) { r.Cells[0].Shards = 0 }, "invalid shard count"},
		{"unordered percentiles", func(r *ServeResult) { r.Cells[0].Latency.P99Micros = 9999 }, "out of order"},
		{"errors", func(r *ServeResult) { r.Cells[0].Latency.Errors = 3 }, "failed"},
		{"no reload block", func(r *ServeResult) { r.Reload = nil }, "no reload comparison"},
		{"no reload replicas", func(r *ServeResult) { r.Reload.Replicas = 0 }, "replicas"},
		{"empty binary snapshot", func(r *ServeResult) { r.Reload.Binary.FileBytes = 0 }, "binary snapshot file is empty"},
		{"zero gob p50", func(r *ServeResult) { r.Reload.Gob.ReloadP50Micros = 0 }, "latencies incoherent"},
		{"reload max below p50", func(r *ServeResult) { r.Reload.Binary.ReloadMaxMicros = 1 }, "latencies incoherent"},
		{"negative reload heap", func(r *ServeResult) { r.Reload.Gob.HeapBytesPerReplica = -1 }, "heap per replica negative"},
		{"binary slower than gob", func(r *ServeResult) { r.Reload.SpeedupX = 0.5 }, "must not be slower"},
	}
	for _, tc := range cases {
		r := good()
		tc.mutate(r)
		err := ValidateServe(r)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestPercentileExact: percentiles are exact order statistics.
func TestPercentileExact(t *testing.T) {
	sorted := make([]int64, 1000)
	for i := range sorted {
		sorted[i] = int64(i + 1) // 1..1000
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1},
		{0.5, 500},
		{0.99, 990},
		{0.999, 999},
		{1, 1000},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(1..1000, %v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile([]int64{42}, 0.999); got != 42 {
		t.Errorf("singleton percentile = %d, want 42", got)
	}
}
