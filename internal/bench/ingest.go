package bench

import (
	"fmt"
	"time"

	"driftclean/internal/core"
)

// IngestScale is one benchmarked incremental-ingest scenario: the corpus
// is bulk-loaded in a single checkpoint, then DeltaBatches trickle
// batches of DeltaSentences each are ingested and timed one by one —
// the steady state of a continuously crawled KB, where the question is
// what one more batch costs compared to rebuilding from scratch.
type IngestScale struct {
	// Name labels the scenario in the artifact ("ingest-medium", ...).
	Name string `json:"name"`
	// Sentences is the total corpus size, bulk plus deltas.
	Sentences int `json:"sentences"`
	// CleanRounds caps the detect-and-clean rounds per checkpoint.
	CleanRounds int `json:"clean_rounds"`
	// DeltaBatches is the number of timed trickle batches.
	DeltaBatches int `json:"delta_batches"`
	// DeltaSentences is the size of each trickle batch.
	DeltaSentences int `json:"delta_sentences"`
}

// DefaultIngestScales returns the standard ingest scenario: the medium
// pipeline corpus in steady-state trickle.
func DefaultIngestScales() []IngestScale {
	return []IngestScale{
		{Name: "ingest-medium", Sentences: 40000, CleanRounds: 1, DeltaBatches: 10, DeltaSentences: 1},
	}
}

// SmokeIngestScales returns the tiny ingest scenario the CI smoke run
// uses; its value is the fingerprint-identity check, not the timing.
func SmokeIngestScales() []IngestScale {
	return []IngestScale{
		{Name: "ingest-smoke", Sentences: 6000, CleanRounds: 1, DeltaBatches: 3, DeltaSentences: 1},
	}
}

// IngestResult reports one ingest scenario: the bulk checkpoint, every
// timed delta batch, and the from-scratch rerun over the same final
// corpus that the incremental path must (and did) match bit for bit.
type IngestResult struct {
	IngestScale
	// BulkSeconds is the wall time of the initial bulk checkpoint.
	BulkSeconds float64 `json:"bulk_s"`
	// BatchSeconds is the wall time of each delta batch, in order.
	BatchSeconds []float64 `json:"batch_s"`
	// MeanBatchSeconds and MaxBatchSeconds summarize BatchSeconds.
	MeanBatchSeconds float64 `json:"mean_batch_s"`
	MaxBatchSeconds  float64 `json:"max_batch_s"`
	// FullRerunSeconds is the wall time of one from-scratch checkpoint
	// over the full corpus on a fresh system (extraction + analysis +
	// cleaning; world and corpus generation excluded from both arms).
	FullRerunSeconds float64 `json:"full_rerun_s"`
	// Speedup is FullRerunSeconds over MeanBatchSeconds: how much
	// cheaper keeping the KB current is than rebuilding it.
	Speedup float64 `json:"speedup"`
	// TaskReuse and WalkReuse total, over the delta batches, the
	// concepts whose learning task (KPCA fit) and random-walk scores
	// were reused instead of recomputed — the mechanism the speedup
	// comes from.
	TaskReuse int `json:"task_reuse"`
	WalkReuse int `json:"walk_reuse"`
	// Pairs and Fingerprint identify the final incremental KB;
	// FullFingerprint is the from-scratch rerun's. Identical must be
	// true — the incremental path may save work, never change output.
	Pairs           int    `json:"kb_pairs"`
	Fingerprint     string `json:"kb_fingerprint"`
	FullFingerprint string `json:"full_kb_fingerprint"`
	Identical       bool   `json:"identical"`
}

// RunIngest times every ingest scenario and appends the results to the
// artifact. Both arms run serial (Parallelism = 1): the comparison is
// incremental versus from-scratch, not worker scaling.
func RunIngest(res *Result, scales []IngestScale, progress func(string)) {
	for _, sc := range scales {
		ir := timeIngest(sc)
		if progress != nil {
			progress(fmt.Sprintf("%-14s bulk %6.2fs  batch mean %.3fs max %.3fs (%d×%d sentences)  rerun %6.2fs  %5.1fx  identical=%v",
				sc.Name, ir.BulkSeconds, ir.MeanBatchSeconds, ir.MaxBatchSeconds,
				sc.DeltaBatches, sc.DeltaSentences, ir.FullRerunSeconds, ir.Speedup, ir.Identical))
		}
		res.Ingest = append(res.Ingest, ir)
	}
}

// timeIngest executes one ingest scenario.
func timeIngest(sc IngestScale) IngestResult {
	cfg := core.DefaultConfig()
	cfg.Corpus.NumSentences = sc.Sentences
	cfg.Clean.MaxRounds = sc.CleanRounds
	cfg.Parallelism = 1
	cfg.Corpus.Parallelism = 1
	cfg.Extract.Parallelism = 1
	cfg.Clean.Parallelism = 1

	ir := IngestResult{IngestScale: sc}
	sys := core.Prepare(cfg)
	ing := core.NewIngestor(sys, core.DetectMultiTask)
	sents := sys.Corpus.Sentences
	bulk := len(sents) - sc.DeltaBatches*sc.DeltaSentences
	if bulk < 0 {
		panic(fmt.Sprintf("bench: ingest scale %s: %d delta sentences exceed the %d-sentence corpus",
			sc.Name, sc.DeltaBatches*sc.DeltaSentences, len(sents)))
	}

	t0 := time.Now()
	if _, err := ing.Ingest(sents[:bulk], nil); err != nil {
		panic(fmt.Sprintf("bench: bulk ingest failed: %v", err))
	}
	ir.BulkSeconds = time.Since(t0).Seconds()

	start := bulk
	for b := 0; b < sc.DeltaBatches; b++ {
		end := start + sc.DeltaSentences
		t0 := time.Now()
		st, err := ing.Ingest(sents[start:end], nil)
		if err != nil {
			panic(fmt.Sprintf("bench: delta ingest %d failed: %v", b+1, err))
		}
		ir.BatchSeconds = append(ir.BatchSeconds, time.Since(t0).Seconds())
		ir.TaskReuse += st.TaskReuse
		ir.WalkReuse += st.WalkReuse
		start = end
	}
	var sum float64
	for _, s := range ir.BatchSeconds {
		sum += s
		if s > ir.MaxBatchSeconds {
			ir.MaxBatchSeconds = s
		}
	}
	ir.MeanBatchSeconds = sum / float64(len(ir.BatchSeconds))
	ir.Pairs = sys.KB.NumPairs()
	ir.Fingerprint = Fingerprint(sys.KB)

	// The from-scratch arm: a fresh system ingests the identical full
	// corpus in one checkpoint — the same extraction, analysis and
	// cleaning work a non-incremental consumer would redo per batch.
	ref := core.Prepare(cfg)
	refIng := core.NewIngestor(ref, core.DetectMultiTask)
	t0 = time.Now()
	if _, err := refIng.Ingest(ref.Corpus.Sentences, nil); err != nil {
		panic(fmt.Sprintf("bench: full rerun failed: %v", err))
	}
	ir.FullRerunSeconds = time.Since(t0).Seconds()
	ir.FullFingerprint = Fingerprint(ref.KB)
	if ir.MeanBatchSeconds > 0 {
		ir.Speedup = ir.FullRerunSeconds / ir.MeanBatchSeconds
	}
	ir.Identical = ir.Fingerprint == ir.FullFingerprint && ir.Pairs == ref.KB.NumPairs()
	return ir
}
