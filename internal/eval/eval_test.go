package eval

import (
	"math"
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/dp"
	"driftclean/internal/kb"
	"driftclean/internal/world"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// fixture builds a tiny world/corpus/KB triple with known truth:
// animal = {dog, cat, chicken, duck}, food = {beef, pork, chicken}.
// KB: dog, cat, chicken core under animal; chicken triggers beef (error)
// and duck (correct) under animal.
func fixture(t testing.TB) (*Oracle, *kb.KB) {
	t.Helper()
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 1
	w := world.New(wcfg)
	c := corpus.Generate(w, corpus.Config{Seed: 9, NumSentences: 50})
	o := NewOracle(w, c)
	k := kb.New()
	k.AddExtraction(0, "animal", nil, []string{"dog", "cat", "chicken"}, nil, 1)
	k.AddExtraction(1, "animal", nil, []string{"beef", "duck", "chicken"}, []string{"chicken"}, 2)
	return o, k
}

func TestPairCorrect(t *testing.T) {
	o, _ := fixture(t)
	if !o.PairCorrect("animal", "dog") {
		t.Error("dog isA animal must be correct")
	}
	if o.PairCorrect("animal", "beef") {
		t.Error("beef isA animal must be wrong")
	}
}

func TestTruthLabels(t *testing.T) {
	o, k := fixture(t)
	if got := o.TruthLabel(k, "animal", "chicken"); got != dp.Intentional {
		t.Errorf("chicken = %v, want Intentional (correct pair that triggered beef)", got)
	}
	if got := o.TruthLabel(k, "animal", "dog"); got != dp.NonDP {
		t.Errorf("dog = %v, want NonDP", got)
	}
	// A wrong pair that triggers errors is Accidental.
	k.AddExtraction(2, "animal", nil, []string{"pork"}, []string{"beef"}, 3)
	if got := o.TruthLabel(k, "animal", "beef"); got != dp.Accidental {
		t.Errorf("beef = %v, want Accidental", got)
	}
}

func TestConceptStats(t *testing.T) {
	o, k := fixture(t)
	s := o.ConceptStats(k, "animal")
	if s.Instances != 5 || s.Correct != 4 || s.Errors != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.IntentionalDPs != 1 || s.NonDPs != 0 {
		t.Errorf("DP counts = %+v (only chicken triggers)", s)
	}
	if !approx(s.ErrorPct, 0.2) {
		t.Errorf("error pct = %v", s.ErrorPct)
	}
}

func TestKBPrecision(t *testing.T) {
	o, k := fixture(t)
	if got := o.KBPrecision(k, nil); !approx(got, 0.8) {
		t.Errorf("precision = %v, want 0.8", got)
	}
	if got := o.KBPrecision(k, []string{"animal"}); !approx(got, 0.8) {
		t.Errorf("precision(animal) = %v", got)
	}
	if got := o.KBPrecision(kb.New(), nil); got != 0 {
		t.Errorf("precision(empty) = %v", got)
	}
}

func TestCleaningMetrics(t *testing.T) {
	o, k := fixture(t)
	before := k.Instances("animal") // beef cat chicken dog duck
	k.RemovePairs([]kb.Pair{{Concept: "animal", Instance: "beef"}, {Concept: "animal", Instance: "cat"}})
	m := o.Cleaning("animal", before, k)
	// Removed: beef (error) + cat (correct) -> perror 1/2, rerror 1/1.
	if !approx(m.PError, 0.5) || !approx(m.RError, 1) {
		t.Errorf("perror=%v rerror=%v", m.PError, m.RError)
	}
	// Remaining: chicken dog duck (all correct) of 4 correct.
	if !approx(m.PCorr, 1) || !approx(m.RCorr, 0.75) {
		t.Errorf("pcorr=%v rcorr=%v", m.PCorr, m.RCorr)
	}
}

func TestCleaningRemovedSet(t *testing.T) {
	o, k := fixture(t)
	before := k.Instances("animal")
	m := o.CleaningRemovedSet("animal", before, map[string]bool{"beef": true})
	if !approx(m.PError, 1) || !approx(m.RError, 1) || !approx(m.PCorr, 1) || !approx(m.RCorr, 1) {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMergeCleaning(t *testing.T) {
	a := CleaningMetrics{Removed: 2, RemovedErrors: 2, Errors: 2, Remaining: 8, RemainingCorrect: 8, Correct: 8}
	b := CleaningMetrics{Removed: 2, RemovedErrors: 0, Errors: 2, Remaining: 8, RemainingCorrect: 6, Correct: 8}
	m := MergeCleaning([]CleaningMetrics{a, b})
	if !approx(m.PError, 0.5) || !approx(m.RError, 0.5) {
		t.Errorf("merged perror=%v rerror=%v", m.PError, m.RError)
	}
	if !approx(m.PCorr, 14.0/16) || !approx(m.RCorr, 14.0/16) {
		t.Errorf("merged pcorr=%v rcorr=%v", m.PCorr, m.RCorr)
	}
}

func TestDetectionPRF(t *testing.T) {
	truth := map[string]dp.Label{
		"a": dp.Intentional, "b": dp.Accidental, "c": dp.NonDP, "d": dp.NonDP,
	}
	pred := map[string]dp.Label{
		"a": dp.Accidental,  // type confusion still counts as detected (binary)
		"b": dp.NonDP,       // missed
		"c": dp.Intentional, // false positive
		"d": dp.NonDP,
		"x": dp.Intentional, // not in truth: ignored
	}
	m := Detection(truth, pred)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("TP=%d FP=%d FN=%d", m.TP, m.FP, m.FN)
	}
	if !approx(m.Precision, 0.5) || !approx(m.Recall, 0.5) || !approx(m.F1, 0.5) {
		t.Errorf("PRF = %v %v %v", m.Precision, m.Recall, m.F1)
	}
}

func TestAccuracy(t *testing.T) {
	truth := map[string]dp.Label{"a": dp.NonDP, "b": dp.Intentional, "c": dp.Accidental}
	pred := map[string]dp.Label{"a": dp.NonDP, "b": dp.Accidental, "c": dp.Accidental}
	if got := Accuracy(truth, pred); !approx(got, 2.0/3) {
		t.Errorf("accuracy = %v", got)
	}
	if got := Accuracy(truth, map[string]dp.Label{}); got != 0 {
		t.Errorf("accuracy(no overlap) = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	o, _ := fixture(t)
	ranked := []string{"dog", "beef", "cat"}
	if got := o.PrecisionAtK("animal", ranked, 2); !approx(got, 0.5) {
		t.Errorf("p@2 = %v", got)
	}
	if got := o.PrecisionAtK("animal", ranked, 10); !approx(got, 2.0/3) {
		t.Errorf("p@10 clamps to list: %v", got)
	}
	if got := o.PrecisionAtK("animal", nil, 5); got != 0 {
		t.Errorf("p@k empty = %v", got)
	}
}

func TestSentenceCheck(t *testing.T) {
	o, k := fixture(t)
	// Extraction 1 resolved to animal; its sentence's truth concept comes
	// from the generated corpus, so craft expectations via ExtractionBad.
	bad := o.ExtractionBad(k, 1)
	m := o.SentenceCheck(k, []int{1}, map[int]bool{1: bad})
	if bad && m.TP != 1 {
		t.Errorf("flagging a bad extraction must be TP, got %+v", m)
	}
	if !bad && (m.FP != 0 || m.FN != 0) {
		t.Errorf("nothing flagged on clean extraction: %+v", m)
	}
}

func TestSeedLabelCorrect(t *testing.T) {
	o, k := fixture(t)
	// Accidental seeds only need the pair to be wrong.
	if !o.SeedLabelCorrect(k, "animal", "beef", dp.Accidental) {
		t.Error("accidental seed on wrong pair must be correct")
	}
	if o.SeedLabelCorrect(k, "animal", "dog", dp.Accidental) {
		t.Error("accidental seed on correct pair must be wrong")
	}
	if !o.SeedLabelCorrect(k, "animal", "chicken", dp.Intentional) {
		t.Error("chicken intentional seed must match truth")
	}
	if !o.SeedLabelCorrect(k, "animal", "dog", dp.NonDP) {
		t.Error("dog non-DP seed must match truth")
	}
}

func TestSeedQuality(t *testing.T) {
	truth := map[string]dp.Label{"a": dp.Intentional, "b": dp.NonDP, "c": dp.NonDP}
	seeds := map[string]dp.Label{"a": dp.Intentional, "b": dp.Accidental}
	p, r := SeedQuality(truth, seeds)
	if !approx(p, 0.5) || !approx(r, 2.0/3) {
		t.Errorf("seed quality = %v %v", p, r)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q := Quantiles(xs, []float64{0, 0.5, 1})
	if q[0] != 1 || q[1] != 3 || q[2] != 5 {
		t.Errorf("quantiles = %v", q)
	}
	if q := Quantiles(nil, []float64{0.5}); q[0] != 0 {
		t.Errorf("empty quantiles = %v", q)
	}
	q = Quantiles([]float64{1, 2}, []float64{0.5})
	if !approx(q[0], 1.5) {
		t.Errorf("interpolated median = %v", q[0])
	}
}
