package eval

import (
	"testing"

	"driftclean/internal/dp"
)

// TestCleaningMetricsTable exercises the four cleaning dimensions
// (Table 3) over hand-computed scenarios, including every
// zero-denominator edge: the ratio convention is 0/0 = 0, so a metric
// whose population is empty reads as 0, never NaN.
//
// Truth in the fixture world: animal = {dog, cat, chicken, duck};
// beef and pork are NOT animals.
func TestCleaningMetricsTable(t *testing.T) {
	o, _ := fixture(t)
	cases := []struct {
		name    string
		before  []string
		removed map[string]bool
		want    CleaningMetrics
	}{
		{
			name:    "perfect cleaning removes exactly the errors",
			before:  []string{"dog", "cat", "beef", "pork"},
			removed: map[string]bool{"beef": true, "pork": true},
			want:    CleaningMetrics{PError: 1, RError: 1, PCorr: 1, RCorr: 1},
		},
		{
			name:    "half-right removal",
			before:  []string{"dog", "cat", "beef", "pork"},
			removed: map[string]bool{"beef": true, "cat": true},
			// Removed 2, one an error: perror 1/2. Errors 2, one removed:
			// rerror 1/2. Remaining {dog, pork}: pcorr 1/2. Correct
			// {dog, cat}, dog remains: rcorr 1/2.
			want: CleaningMetrics{PError: 0.5, RError: 0.5, PCorr: 0.5, RCorr: 0.5},
		},
		{
			name:    "nothing removed: perror has zero denominator",
			before:  []string{"dog", "beef"},
			removed: map[string]bool{},
			want:    CleaningMetrics{PError: 0, RError: 0, PCorr: 0.5, RCorr: 1},
		},
		{
			name:    "no errors to find: rerror has zero denominator",
			before:  []string{"dog", "cat"},
			removed: map[string]bool{"cat": true},
			want:    CleaningMetrics{PError: 0, RError: 0, PCorr: 1, RCorr: 0.5},
		},
		{
			name:    "everything removed: pcorr has zero denominator",
			before:  []string{"dog", "beef"},
			removed: map[string]bool{"dog": true, "beef": true},
			want:    CleaningMetrics{PError: 0.5, RError: 1, PCorr: 0, RCorr: 0},
		},
		{
			name:    "no correct pairs at all: rcorr has zero denominator",
			before:  []string{"beef", "pork"},
			removed: map[string]bool{"beef": true},
			want:    CleaningMetrics{PError: 1, RError: 0.5, PCorr: 0, RCorr: 0},
		},
		{
			name:    "empty instance set: every denominator is zero",
			before:  nil,
			removed: map[string]bool{},
			want:    CleaningMetrics{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := o.CleaningRemovedSet("animal", tc.before, tc.removed)
			if !approx(m.PError, tc.want.PError) {
				t.Errorf("PError = %v, want %v", m.PError, tc.want.PError)
			}
			if !approx(m.RError, tc.want.RError) {
				t.Errorf("RError = %v, want %v", m.RError, tc.want.RError)
			}
			if !approx(m.PCorr, tc.want.PCorr) {
				t.Errorf("PCorr = %v, want %v", m.PCorr, tc.want.PCorr)
			}
			if !approx(m.RCorr, tc.want.RCorr) {
				t.Errorf("RCorr = %v, want %v", m.RCorr, tc.want.RCorr)
			}
		})
	}
}

// TestMergeCleaningTable pins the micro-aggregation: counts add, ratios
// are recomputed from the merged counts (not averaged), and merging
// nothing is all zeros.
func TestMergeCleaningTable(t *testing.T) {
	cases := []struct {
		name string
		in   []CleaningMetrics
		want CleaningMetrics
	}{
		{
			name: "empty merge is zero",
			in:   nil,
			want: CleaningMetrics{},
		},
		{
			name: "micro not macro",
			// Concept A: 1 removal, right. Concept B: 9 removals, all
			// wrong. Macro-average perror would be (1+0)/2 = 0.5; micro is
			// 1/10.
			in: []CleaningMetrics{
				{Removed: 1, RemovedErrors: 1, Errors: 1},
				{Removed: 9, RemovedErrors: 0, Errors: 0},
			},
			want: CleaningMetrics{PError: 0.1, RError: 1},
		},
		{
			name: "zero-denominator sides stay zero after merge",
			in: []CleaningMetrics{
				{Remaining: 4, RemainingCorrect: 2, Correct: 2},
			},
			want: CleaningMetrics{PCorr: 0.5, RCorr: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MergeCleaning(tc.in)
			if !approx(m.PError, tc.want.PError) || !approx(m.RError, tc.want.RError) ||
				!approx(m.PCorr, tc.want.PCorr) || !approx(m.RCorr, tc.want.RCorr) {
				t.Errorf("merged = %+v, want ratios %+v", m, tc.want)
			}
		})
	}
}

// TestDetectionTable drives the binary DP detection score through
// hand-computed confusion matrices, including the zero-denominator
// precision (no positives predicted) and recall (no true DPs) cases.
func TestDetectionTable(t *testing.T) {
	cases := []struct {
		name      string
		truth     map[string]dp.Label
		predicted map[string]dp.Label
		want      PRF1
	}{
		{
			name:      "perfect",
			truth:     map[string]dp.Label{"a": dp.Intentional, "b": dp.NonDP},
			predicted: map[string]dp.Label{"a": dp.Accidental, "b": dp.NonDP},
			// Binary DP-vs-not: Accidental counts as a DP prediction.
			want: PRF1{Precision: 1, Recall: 1, F1: 1, TP: 1},
		},
		{
			name:      "no predicted positives: precision denominator zero",
			truth:     map[string]dp.Label{"a": dp.Intentional},
			predicted: map[string]dp.Label{"a": dp.NonDP},
			want:      PRF1{FN: 1},
		},
		{
			name:      "no true DPs: recall denominator zero",
			truth:     map[string]dp.Label{"a": dp.NonDP},
			predicted: map[string]dp.Label{"a": dp.Intentional},
			want:      PRF1{FP: 1},
		},
		{
			name:      "predictions outside the labeled set are ignored",
			truth:     map[string]dp.Label{"a": dp.Intentional},
			predicted: map[string]dp.Label{"a": dp.Intentional, "zzz": dp.Intentional},
			want:      PRF1{Precision: 1, Recall: 1, F1: 1, TP: 1},
		},
		{
			name:      "mixed",
			truth:     map[string]dp.Label{"a": dp.Intentional, "b": dp.Accidental, "c": dp.NonDP, "d": dp.Intentional},
			predicted: map[string]dp.Label{"a": dp.Intentional, "b": dp.NonDP, "c": dp.Accidental, "d": dp.NonDP},
			// TP {a}, FP {c}, FN {b, d}: P 1/2, R 1/3, F1 2·(1/2·1/3)/(5/6) = 0.4.
			want: PRF1{Precision: 0.5, Recall: 1.0 / 3, F1: 0.4, TP: 1, FP: 1, FN: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Detection(tc.truth, tc.predicted)
			if m.TP != tc.want.TP || m.FP != tc.want.FP || m.FN != tc.want.FN {
				t.Errorf("confusion = TP%d/FP%d/FN%d, want TP%d/FP%d/FN%d",
					m.TP, m.FP, m.FN, tc.want.TP, tc.want.FP, tc.want.FN)
			}
			if !approx(m.Precision, tc.want.Precision) || !approx(m.Recall, tc.want.Recall) || !approx(m.F1, tc.want.F1) {
				t.Errorf("P/R/F1 = %v/%v/%v, want %v/%v/%v",
					m.Precision, m.Recall, m.F1, tc.want.Precision, tc.want.Recall, tc.want.F1)
			}
		})
	}
}

// TestAccuracyTable: three-class accuracy over the map intersection,
// with the empty-intersection zero-denominator case.
func TestAccuracyTable(t *testing.T) {
	cases := []struct {
		name      string
		truth     map[string]dp.Label
		predicted map[string]dp.Label
		want      float64
	}{
		{"disjoint keys score zero", map[string]dp.Label{"a": dp.NonDP}, map[string]dp.Label{"b": dp.NonDP}, 0},
		{"empty maps score zero", map[string]dp.Label{}, map[string]dp.Label{}, 0},
		{
			"exact three-class match required",
			map[string]dp.Label{"a": dp.Intentional, "b": dp.Accidental, "c": dp.NonDP},
			map[string]dp.Label{"a": dp.Intentional, "b": dp.Intentional, "c": dp.NonDP},
			2.0 / 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Accuracy(tc.truth, tc.predicted); !approx(got, tc.want) {
				t.Errorf("accuracy = %v, want %v", got, tc.want)
			}
		})
	}
}
