// Package eval provides the ground-truth oracle and every metric the
// paper's evaluation section reports. Because our corpus is generated from
// a known world (DESIGN.md §1), the oracle labels every isA pair, every
// trigger instance, and every sentence resolution exactly — playing the
// role of the paper's 87k manually labeled instances (Table 1).
//
// Only evaluation and seed-inspection code may depend on this package's
// oracle; the extraction and cleaning pipeline never sees ground truth.
package eval

import (
	"math"
	"sort"

	"driftclean/internal/corpus"
	"driftclean/internal/dp"
	"driftclean/internal/kb"
	"driftclean/internal/world"
)

// Oracle answers ground-truth questions about extractions over a corpus.
type Oracle struct {
	W *world.World
	C *corpus.Corpus
}

// NewOracle builds an oracle for a world/corpus pair.
func NewOracle(w *world.World, c *corpus.Corpus) *Oracle { return &Oracle{W: w, C: c} }

// PairCorrect reports whether (instance isA concept) holds in ground truth.
func (o *Oracle) PairCorrect(concept, instance string) bool {
	return o.W.IsTrue(concept, instance)
}

// TruthLabel assigns the ground-truth DP label to an instance under a
// concept, from the definitions of Sec 2.2: an instance that triggered at
// least one erroneous extraction is an Intentional DP when it is itself
// correct and an Accidental DP when it is itself wrong; everything else is
// a non-DP.
func (o *Oracle) TruthLabel(k *kb.KB, concept, instance string) dp.Label {
	introducedError := false
	for _, sub := range k.SubInstances(concept, instance) {
		if !o.W.IsTrue(concept, sub) {
			introducedError = true
			break
		}
	}
	if !introducedError {
		return dp.NonDP
	}
	if o.W.IsTrue(concept, instance) {
		return dp.Intentional
	}
	return dp.Accidental
}

// ExtractionBad reports whether a resolved extraction chose a concept
// other than the sentence's true concept (used for Table 5's pstc/rstc).
func (o *Oracle) ExtractionBad(k *kb.KB, exID int) bool {
	ex := k.Extraction(exID)
	truth := o.C.Truth(ex.SentenceID)
	return ex.Concept != truth.TrueConcept
}

// ConceptStats is one row of Table 1.
type ConceptStats struct {
	Concept        string
	Instances      int
	Correct        int
	Errors         int
	ErrorPct       float64
	IntentionalDPs int
	AccidentalDPs  int
	NonDPs         int // non-DP triggers, i.e. instances with sub-instances and no introduced error
}

// ConceptStats computes the Table 1 statistics for a concept over the
// current KB. Following the paper, the DP columns only count instances
// that actually trigger sub-instances.
func (o *Oracle) ConceptStats(k *kb.KB, concept string) ConceptStats {
	s := ConceptStats{Concept: concept}
	for _, e := range k.Instances(concept) {
		s.Instances++
		if o.PairCorrect(concept, e) {
			s.Correct++
		} else {
			s.Errors++
		}
		if len(k.SubInstances(concept, e)) == 0 {
			continue
		}
		switch o.TruthLabel(k, concept, e) {
		case dp.Intentional:
			s.IntentionalDPs++
		case dp.Accidental:
			s.AccidentalDPs++
		default:
			s.NonDPs++
		}
	}
	if s.Instances > 0 {
		s.ErrorPct = float64(s.Errors) / float64(s.Instances)
	}
	return s
}

// KBPrecision returns the fraction of active pairs (over the given
// concepts, or all concepts when nil) that are correct.
func (o *Oracle) KBPrecision(k *kb.KB, concepts []string) float64 {
	if concepts == nil {
		concepts = k.Concepts()
	}
	correct, total := 0, 0
	for _, c := range concepts {
		for _, e := range k.Instances(c) {
			total++
			if o.PairCorrect(c, e) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// CleaningMetrics are the four dimensions of Tables 3 and 5:
// PError — precision of removal (removed errors / all removed);
// RError — recall of removal (removed errors / all errors);
// PCorr  — precision of what remains (remaining correct / all remaining);
// RCorr  — recall of what remains (remaining correct / all correct).
type CleaningMetrics struct {
	PError, RError, PCorr, RCorr                                         float64
	Removed, Errors, Remaining, Correct, RemovedErrors, RemainingCorrect int
}

// Cleaning compares a concept's instance set before and after cleaning.
func (o *Oracle) Cleaning(concept string, before []string, after *kb.KB) CleaningMetrics {
	var m CleaningMetrics
	for _, e := range before {
		correct := o.PairCorrect(concept, e)
		if correct {
			m.Correct++
		} else {
			m.Errors++
		}
		if after.Has(concept, e) {
			m.Remaining++
			if correct {
				m.RemainingCorrect++
			}
		} else {
			m.Removed++
			if !correct {
				m.RemovedErrors++
			}
		}
	}
	m.PError = ratio(m.RemovedErrors, m.Removed)
	m.RError = ratio(m.RemovedErrors, m.Errors)
	m.PCorr = ratio(m.RemainingCorrect, m.Remaining)
	m.RCorr = ratio(m.RemainingCorrect, m.Correct)
	return m
}

// CleaningRemovedSet scores a removal set directly (for baselines that
// propose removals without mutating the KB).
func (o *Oracle) CleaningRemovedSet(concept string, before []string, removed map[string]bool) CleaningMetrics {
	var m CleaningMetrics
	for _, e := range before {
		correct := o.PairCorrect(concept, e)
		if correct {
			m.Correct++
		} else {
			m.Errors++
		}
		if removed[e] {
			m.Removed++
			if !correct {
				m.RemovedErrors++
			}
		} else {
			m.Remaining++
			if correct {
				m.RemainingCorrect++
			}
		}
	}
	m.PError = ratio(m.RemovedErrors, m.Removed)
	m.RError = ratio(m.RemovedErrors, m.Errors)
	m.PCorr = ratio(m.RemainingCorrect, m.Remaining)
	m.RCorr = ratio(m.RemainingCorrect, m.Correct)
	return m
}

// MergeCleaning micro-aggregates per-concept cleaning metrics.
func MergeCleaning(ms []CleaningMetrics) CleaningMetrics {
	var t CleaningMetrics
	for _, m := range ms {
		t.Removed += m.Removed
		t.Errors += m.Errors
		t.Remaining += m.Remaining
		t.Correct += m.Correct
		t.RemovedErrors += m.RemovedErrors
		t.RemainingCorrect += m.RemainingCorrect
	}
	t.PError = ratio(t.RemovedErrors, t.Removed)
	t.RError = ratio(t.RemovedErrors, t.Errors)
	t.PCorr = ratio(t.RemainingCorrect, t.Remaining)
	t.RCorr = ratio(t.RemainingCorrect, t.Correct)
	return t
}

// PRF1 is a precision/recall/F1 triple.
type PRF1 struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// Detection scores binary DP detection (predicted DP of either type vs
// ground truth DP of either type) over labeled instances.
func Detection(truth, predicted map[string]dp.Label) PRF1 {
	var m PRF1
	for e, p := range predicted {
		t, ok := truth[e]
		if !ok {
			continue
		}
		switch {
		case p.IsDP() && t.IsDP():
			m.TP++
		case p.IsDP() && !t.IsDP():
			m.FP++
		}
	}
	for e, t := range truth {
		if !t.IsDP() {
			continue
		}
		if p, ok := predicted[e]; !ok || !p.IsDP() {
			m.FN++
		}
	}
	m.Precision = ratio(m.TP, m.TP+m.FP)
	m.Recall = ratio(m.TP, m.TP+m.FN)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Accuracy computes three-class label accuracy over the intersection of
// the two maps (Fig 5c's y-axis).
func Accuracy(truth, predicted map[string]dp.Label) float64 {
	agree, total := 0, 0
	for e, t := range truth {
		p, ok := predicted[e]
		if !ok {
			continue
		}
		total++
		if p == t {
			agree++
		}
	}
	return ratio(agree, total)
}

// PrecisionAtK returns the fraction of the first k ranked instances that
// are correct for the concept; ranked lists shorter than k are scored over
// their full length.
func (o *Oracle) PrecisionAtK(concept string, ranked []string, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	correct := 0
	for _, e := range ranked[:k] {
		if o.PairCorrect(concept, e) {
			correct++
		}
	}
	return float64(correct) / float64(k)
}

// SentenceCheck scores a bad-resolution flagging strategy (Table 5's pstc
// and rstc): flagged is the set of extraction IDs the strategy marked bad;
// candidates is the full set of extraction IDs the strategy examined.
func (o *Oracle) SentenceCheck(k *kb.KB, candidates []int, flagged map[int]bool) PRF1 {
	var m PRF1
	for _, id := range candidates {
		bad := o.ExtractionBad(k, id)
		switch {
		case flagged[id] && bad:
			m.TP++
		case flagged[id] && !bad:
			m.FP++
		case !flagged[id] && bad:
			m.FN++
		}
	}
	m.Precision = ratio(m.TP, m.TP+m.FP)
	m.Recall = ratio(m.TP, m.TP+m.FN)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// TruthLabels returns the ground-truth DP labels of every triggering
// instance (sub-instances ≥ 1) under a concept.
func (o *Oracle) TruthLabels(k *kb.KB, concept string) map[string]dp.Label {
	out := make(map[string]dp.Label)
	for _, e := range k.Instances(concept) {
		if len(k.SubInstances(concept, e)) == 0 {
			continue
		}
		out[e] = o.TruthLabel(k, concept, e)
	}
	return out
}

// SeedLabelCorrect judges one seed label: an Intentional or non-DP seed
// must match the full DP truth label; an Accidental seed is correct
// whenever the pair itself is wrong — the essence of Definition 4 — even
// if the instance happened to trigger nothing.
func (o *Oracle) SeedLabelCorrect(k *kb.KB, concept, instance string, label dp.Label) bool {
	if label == dp.Accidental {
		return !o.PairCorrect(concept, instance)
	}
	return o.TruthLabel(k, concept, instance) == label
}

// SeedQuality measures a seed-labeling pass against ground truth
// (Fig 5b): precision is the fraction of labeled instances whose label
// matches truth; recall is the fraction of truth-labelable instances that
// received a label.
func SeedQuality(truth, seeds map[string]dp.Label) (precision, recall float64) {
	agree := 0
	for e, l := range seeds {
		if t, ok := truth[e]; ok && t == l {
			agree++
		}
	}
	return ratio(agree, len(seeds)), ratio(len(seeds), len(truth))
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Quantiles returns the q-quantiles (e.g. {0.25, 0.5, 0.75}) of xs.
func Quantiles(xs []float64, qs []float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}
