package driftclean

import (
	"context"
	"errors"
	"fmt"

	"driftclean/internal/core"
	"driftclean/internal/experiments"
	"driftclean/internal/snapshot"
)

// Re-exported pipeline types. Config aggregates every subsystem's
// configuration; System is a built world+corpus+extraction; Analysis is
// the per-KB-state artifact bundle (exclusions, seeds, features, tasks);
// CleanResult reports a cleaning run; Snapshot is an immutable,
// concurrency-safe point-in-time view of a KB, ready for the serving
// layer (internal/serve, cmd/driftserve).
type (
	Config       = core.Config
	System       = core.System
	Analysis     = core.Analysis
	CleanResult  = core.CleanResult
	DetectorKind = core.DetectorKind
	Snapshot     = snapshot.Snapshot
)

// Detection methods (Table 4 of the paper).
const (
	// DetectMultiTask is the paper's method: semi-supervised multi-task
	// Concept Adaptive Drift Detection (Algorithm 1).
	DetectMultiTask = core.DetectMultiTask
	// DetectSemiSupervised trains each concept separately with the
	// manifold regularizer (Eq 15).
	DetectSemiSupervised = core.DetectSemiSupervised
	// DetectSupervised is the conventional per-concept Random Forest.
	DetectSupervised = core.DetectSupervised
	// DetectRidge is plain least squares on the KPCA representation.
	DetectRidge = core.DetectRidge
	// DetectAdHoc1..4 threshold a single DP feature.
	DetectAdHoc1 = core.DetectAdHoc1
	DetectAdHoc2 = core.DetectAdHoc2
	DetectAdHoc3 = core.DetectAdHoc3
	DetectAdHoc4 = core.DetectAdHoc4
)

// Typed sentinel errors returned by the context-first API. Match with
// errors.Is; both may wrap further detail.
var (
	// ErrNoDPsDetected reports that the detector found no drifting
	// points, so cleaning had nothing to do. The accompanying *Report is
	// still fully populated — before and after are simply identical.
	ErrNoDPsDetected = errors.New("driftclean: no drifting points detected")
	// ErrCanceled reports that the run stopped early because the
	// caller's context was canceled or timed out. It wraps the
	// underlying context error, so errors.Is(err, context.Canceled)
	// also matches when applicable.
	ErrCanceled = errors.New("driftclean: run canceled")
	// ErrStagePanic reports that a pipeline stage panicked. The panic is
	// recovered at the API boundary — a stage failure must surface as an
	// error, never crash the process — and the returned error names the
	// stage and wraps the panic value when it was itself an error (so a
	// fault-injected panic still matches its own sentinel via errors.Is).
	ErrStagePanic = errors.New("driftclean: pipeline stage panicked")
)

// runStage executes one pipeline phase, converting a panic — whether
// raised on the calling goroutine or re-thrown by internal/par from a
// worker — into an ErrStagePanic-wrapped error.
func runStage(stage string, fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok {
			err = fmt.Errorf("%w: %s: %w", ErrStagePanic, stage, e)
			return
		}
		err = fmt.Errorf("%w: %s: %v", ErrStagePanic, stage, r)
	}()
	fn()
	return nil
}

// Phase identifies a stage of a cleaning run, reported through
// WithProgress.
type Phase int

// The phases of a run, in order. PhaseClean repeats once per
// detect-and-clean round.
const (
	// PhaseBuild covers world generation, corpus synthesis and the
	// iterative (drifting) extraction.
	PhaseBuild Phase = iota
	// PhaseClean is one detect-and-clean round; the Round argument
	// carries the 1-based round number.
	PhaseClean
	// PhaseEvaluate computes the report's precision and cleaning
	// metrics against the synthetic ground truth.
	PhaseEvaluate
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseBuild:
		return "build"
	case PhaseClean:
		return "clean"
	case PhaseEvaluate:
		return "evaluate"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Round is the 1-based detect-and-clean round number a progress callback
// receives; it is 0 for the build and evaluate phases.
type Round = int

// Option configures a context-first run. Options are applied in order;
// later options win.
type Option func(*options)

type options struct {
	cfg      Config
	method   DetectorKind
	progress []func(Phase, Round)
}

func newOptions(opts []Option) options {
	o := options{cfg: core.DefaultConfig(), method: DetectMultiTask}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *options) emit(p Phase, r Round) {
	for _, fn := range o.progress {
		fn(p, r)
	}
}

// WithConfig replaces the default configuration for the run.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithMethod selects the DP detection method for CleanContext (the
// default is DetectMultiTask, the paper's method). CleanWithContext
// ignores it — there the method is an explicit argument.
func WithMethod(method DetectorKind) Option {
	return func(o *options) { o.method = method }
}

// WithProgress registers a callback invoked as the run advances:
// (PhaseBuild, 0) before the system is built, (PhaseClean, r) before
// each detect-and-clean round r = 1, 2, ..., and (PhaseEvaluate, 0)
// before final evaluation. Multiple callbacks may be registered; they
// run synchronously on the pipeline goroutine, so they must be fast.
func WithProgress(fn func(Phase, Round)) Option {
	return func(o *options) { o.progress = append(o.progress, fn) }
}

// DefaultConfig returns the standard configuration: a mid-size synthetic
// world whose extraction drifts the way Fig 5(a) of the paper shows.
func DefaultConfig() Config { return core.DefaultConfig() }

// Build generates the world and corpus and runs the iterative extraction
// to its drifted fixpoint.
func Build(cfg Config) *System { return core.Build(cfg) }

// Report summarizes an end-to-end cleaning run.
type Report struct {
	// PrecisionBefore/After are KB precision over all concepts measured
	// against the synthetic ground truth.
	PrecisionBefore, PrecisionAfter float64
	// PError, RError, PCorr, RCorr are the paper's four cleaning
	// dimensions (Table 3), micro-aggregated over all concepts.
	PError, RError, PCorr, RCorr float64
	// PairsBefore/After count distinct isA pairs.
	PairsBefore, PairsAfter int
	// Rounds is the number of detect-and-clean rounds executed, including
	// the terminating round in which the detector found nothing.
	Rounds int
	// Converged reports that cleaning stopped because a round detected no
	// DPs at all (the Sec 4.2 fixpoint) rather than exhausting MaxRounds.
	Converged bool
	// System retains the built (and now cleaned) system for inspection.
	System *System
}

// Snapshot freezes the report's (cleaned) knowledge base into an
// immutable, concurrency-safe view ready to hand to the serving layer:
// pass it to serve.New or serve.Service.Swap. The pipeline may keep
// mutating the underlying KB afterwards; the snapshot is unaffected.
func (r *Report) Snapshot() *Snapshot { return snapshot.Freeze(r.System.KB) }

// CleanContext runs the complete pipeline — build, detect DPs, clean
// iteratively, evaluate — under the given context, as a one-batch
// session: every sentence is ingested in a single Ingest call. For
// incremental batch-by-batch processing with live snapshot publishing,
// use Open directly; CleanContext remains the convenient one-shot form:
//
//	rep, err := driftclean.CleanContext(ctx,
//		driftclean.WithConfig(cfg),
//		driftclean.WithProgress(func(p driftclean.Phase, r driftclean.Round) {
//			log.Printf("%v round %d", p, r)
//		}))
//
// The detection method defaults to DetectMultiTask; override with
// WithMethod. Cancellation is honored between phases and between
// cleaning rounds and reported as ErrCanceled; a run that detects no
// DPs at all returns the (fully populated) report alongside
// ErrNoDPsDetected.
func CleanContext(ctx context.Context, opts ...Option) (*Report, error) {
	o := newOptions(opts)
	return CleanWithContext(ctx, o.method, opts...)
}

// CleanWithContext is CleanContext with an explicit detection method:
// it opens a Session, ingests the entire corpus as one batch, and
// closes the session, returning that single checkpoint's report.
func CleanWithContext(ctx context.Context, method DetectorKind, opts ...Option) (*Report, error) {
	sess, err := Open(ctx, append(append([]Option(nil), opts...), WithMethod(method))...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.Ingest(ctx, sess.Sentences())
}

// canceledErr wraps the context error in the ErrCanceled sentinel.
func canceledErr(ctxErr error) error {
	if ctxErr == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, ctxErr)
}

// Clean runs the complete pipeline with the paper's multi-task method.
//
// Deprecated: Clean is the pre-context API, kept so existing callers
// compile. New code should use CleanContext, which adds cancellation,
// progress reporting and typed errors.
func Clean(cfg Config) (*Report, error) {
	return stripNoDPs(CleanContext(context.Background(), WithConfig(cfg)))
}

// CleanWith is Clean with an explicit detection method.
//
// Deprecated: CleanWith is the pre-context API, kept so existing
// callers compile. New code should use CleanWithContext.
func CleanWith(cfg Config, method DetectorKind) (*Report, error) {
	return stripNoDPs(CleanWithContext(context.Background(), method, WithConfig(cfg)))
}

// stripNoDPs preserves the legacy contract: a DP-free run is a success,
// not an error.
func stripNoDPs(rep *Report, err error) (*Report, error) {
	if errors.Is(err, ErrNoDPsDetected) {
		return rep, nil
	}
	return rep, err
}

// Experiment types re-exported from the experiments engine. An
// ExperimentTable holds the rows/series one table or figure of the paper
// reports; ExperimentOptions scales the run.
type (
	ExperimentTable   = experiments.Table
	ExperimentOptions = experiments.Options
	ExperimentRunner  = experiments.Runner
)

// DefaultExperimentOptions returns the standard experiment scale.
func DefaultExperimentOptions() ExperimentOptions { return experiments.Default() }

// NewExperimentRunner builds the system once; its methods regenerate the
// individual tables and figures.
func NewExperimentRunner(opts ExperimentOptions) *ExperimentRunner {
	return experiments.NewRunner(opts)
}

// ExperimentIDs lists the regenerable experiments in paper order:
// table1..table5, fig2..fig4, fig5a..fig5c.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one experiment by ID on a fresh runner. For
// several experiments, build a runner once with NewExperimentRunner.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return experiments.NewRunner(opts).ByID(id)
}
