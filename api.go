package driftclean

import (
	"fmt"

	"driftclean/internal/core"
	"driftclean/internal/eval"
	"driftclean/internal/experiments"
)

// Re-exported pipeline types. Config aggregates every subsystem's
// configuration; System is a built world+corpus+extraction; Analysis is
// the per-KB-state artifact bundle (exclusions, seeds, features, tasks);
// CleanResult reports a cleaning run.
type (
	Config       = core.Config
	System       = core.System
	Analysis     = core.Analysis
	CleanResult  = core.CleanResult
	DetectorKind = core.DetectorKind
)

// Detection methods (Table 4 of the paper).
const (
	// DetectMultiTask is the paper's method: semi-supervised multi-task
	// Concept Adaptive Drift Detection (Algorithm 1).
	DetectMultiTask = core.DetectMultiTask
	// DetectSemiSupervised trains each concept separately with the
	// manifold regularizer (Eq 15).
	DetectSemiSupervised = core.DetectSemiSupervised
	// DetectSupervised is the conventional per-concept Random Forest.
	DetectSupervised = core.DetectSupervised
	// DetectRidge is plain least squares on the KPCA representation.
	DetectRidge = core.DetectRidge
	// DetectAdHoc1..4 threshold a single DP feature.
	DetectAdHoc1 = core.DetectAdHoc1
	DetectAdHoc2 = core.DetectAdHoc2
	DetectAdHoc3 = core.DetectAdHoc3
	DetectAdHoc4 = core.DetectAdHoc4
)

// DefaultConfig returns the standard configuration: a mid-size synthetic
// world whose extraction drifts the way Fig 5(a) of the paper shows.
func DefaultConfig() Config { return core.DefaultConfig() }

// Build generates the world and corpus and runs the iterative extraction
// to its drifted fixpoint.
func Build(cfg Config) *System { return core.Build(cfg) }

// Report summarizes an end-to-end cleaning run.
type Report struct {
	// PrecisionBefore/After are KB precision over all concepts measured
	// against the synthetic ground truth.
	PrecisionBefore, PrecisionAfter float64
	// PError, RError, PCorr, RCorr are the paper's four cleaning
	// dimensions (Table 3), micro-aggregated over all concepts.
	PError, RError, PCorr, RCorr float64
	// PairsBefore/After count distinct isA pairs.
	PairsBefore, PairsAfter int
	// Rounds is the number of detect-and-clean rounds executed.
	Rounds int
	// System retains the built (and now cleaned) system for inspection.
	System *System
}

// Clean runs the complete pipeline — build, detect DPs with the paper's
// multi-task method, clean iteratively — and reports the outcome.
func Clean(cfg Config) (*Report, error) {
	return CleanWith(cfg, DetectMultiTask)
}

// CleanWith is Clean with an explicit detection method.
func CleanWith(cfg Config, method DetectorKind) (*Report, error) {
	sys := core.Build(cfg)
	rep := &Report{
		System:          sys,
		PrecisionBefore: sys.Oracle.KBPrecision(sys.KB, nil),
		PairsBefore:     sys.KB.NumPairs(),
	}
	cr, err := sys.CleanDPs(method)
	if err != nil {
		return nil, fmt.Errorf("driftclean: cleaning failed: %w", err)
	}
	rep.PrecisionAfter = sys.Oracle.KBPrecision(sys.KB, nil)
	rep.PairsAfter = sys.KB.NumPairs()
	rep.Rounds = len(cr.Clean.Rounds)
	var per []eval.CleaningMetrics
	for concept, before := range cr.BeforeInstances {
		per = append(per, sys.Oracle.Cleaning(concept, before, sys.KB))
	}
	m := eval.MergeCleaning(per)
	rep.PError, rep.RError, rep.PCorr, rep.RCorr = m.PError, m.RError, m.PCorr, m.RCorr
	return rep, nil
}

// Experiment types re-exported from the experiments engine. An
// ExperimentTable holds the rows/series one table or figure of the paper
// reports; ExperimentOptions scales the run.
type (
	ExperimentTable   = experiments.Table
	ExperimentOptions = experiments.Options
	ExperimentRunner  = experiments.Runner
)

// DefaultExperimentOptions returns the standard experiment scale.
func DefaultExperimentOptions() ExperimentOptions { return experiments.Default() }

// NewExperimentRunner builds the system once; its methods regenerate the
// individual tables and figures.
func NewExperimentRunner(opts ExperimentOptions) *ExperimentRunner {
	return experiments.NewRunner(opts)
}

// ExperimentIDs lists the regenerable experiments in paper order:
// table1..table5, fig2..fig4, fig5a..fig5c.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one experiment by ID on a fresh runner. For
// several experiments, build a runner once with NewExperimentRunner.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return experiments.NewRunner(opts).ByID(id)
}
