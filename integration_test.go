package driftclean

// Integration tests: cross-module contracts that no single package test
// can see — whole-pipeline determinism, cleaning idempotence, persistence
// mid-pipeline, and behavior at degenerate scales (failure injection).

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/extract"
	"driftclean/internal/hearst"
	"driftclean/internal/kb"
	"driftclean/internal/world"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 2
	cfg.World.InstancesPerConceptMin = 40
	cfg.World.InstancesPerConceptMax = 80
	cfg.Corpus.NumSentences = 8000
	cfg.Clean.MaxRounds = 2
	return cfg
}

// TestPipelineDeterminism: identical configs must produce bit-identical
// outcomes end to end, including through the parallel analysis stage.
func TestPipelineDeterminism(t *testing.T) {
	r1, err := Clean(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Clean(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.PrecisionBefore != r2.PrecisionBefore || r1.PrecisionAfter != r2.PrecisionAfter {
		t.Errorf("precision differs across identical runs: %v/%v vs %v/%v",
			r1.PrecisionBefore, r1.PrecisionAfter, r2.PrecisionBefore, r2.PrecisionAfter)
	}
	if r1.PairsAfter != r2.PairsAfter {
		t.Errorf("pair counts differ: %d vs %d", r1.PairsAfter, r2.PairsAfter)
	}
	if !reflect.DeepEqual(r1.System.KB.Pairs(), r2.System.KB.Pairs()) {
		t.Error("final pair sets differ across identical runs")
	}
}

// TestCleaningConverges: a second full cleaning pass over an
// already-cleaned KB must remove (almost) nothing more.
func TestCleaningConverges(t *testing.T) {
	sys := Build(tinyConfig())
	if _, err := sys.CleanDPs(DetectMultiTask); err != nil {
		t.Fatal(err)
	}
	pairsAfterFirst := sys.KB.NumPairs()
	if _, err := sys.CleanDPs(DetectMultiTask); err != nil {
		t.Fatal(err)
	}
	removedAgain := pairsAfterFirst - sys.KB.NumPairs()
	if float64(removedAgain) > 0.05*float64(pairsAfterFirst) {
		t.Errorf("second cleaning pass removed %d of %d pairs — cleaning did not converge",
			removedAgain, pairsAfterFirst)
	}
}

// TestPersistenceMidPipeline: save the drifted KB, reload it, clean the
// reload — the outcome must equal cleaning the original.
func TestPersistenceMidPipeline(t *testing.T) {
	sysA := Build(tinyConfig())
	var buf bytes.Buffer
	if _, err := sysA.KB.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := kb.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sysB := Build(tinyConfig()) // same world/corpus (deterministic)
	sysB.KB = loaded
	sysB.Extraction.KB = loaded

	if _, err := sysA.CleanDPs(DetectMultiTask); err != nil {
		t.Fatal(err)
	}
	if _, err := sysB.CleanDPs(DetectMultiTask); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sysA.KB.Pairs(), sysB.KB.Pairs()) {
		t.Error("cleaning a reloaded KB diverged from cleaning the original")
	}
}

// TestDegenerateScales: the pipeline must not panic or error on extreme
// configurations (failure injection at the config boundary).
func TestDegenerateScales(t *testing.T) {
	cases := map[string]func(*Config){
		"tiny-corpus":       func(c *Config) { c.Corpus.NumSentences = 50 },
		"one-domain":        func(c *Config) { c.World.NumDomains = 1 },
		"huge-instances":    func(c *Config) { c.Corpus.InstancesMin = 8; c.Corpus.InstancesMax = 12 },
		"no-modifiers":      func(c *Config) { c.Corpus.FracModifier = 0.0001 },
		"all-modifiers":     func(c *Config) { c.Corpus.FracModifier = 0.95 },
		"single-round":      func(c *Config) { c.Clean.MaxRounds = 1 },
		"one-iteration":     func(c *Config) { c.Extract.MaxIterations = 1 },
		"reversed-patterns": func(c *Config) { c.Corpus.Patterns = corpus.PatternMix{AndOther: 1} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.Corpus.NumSentences = 3000
			mutate(&cfg)
			rep, err := Clean(cfg)
			if err != nil {
				t.Fatalf("pipeline failed: %v", err)
			}
			if rep.System.KB == nil {
				t.Fatal("no KB produced")
			}
		})
	}
}

// TestParserNeverPanics: random token soup must never panic the parser
// (fuzz-style failure injection).
func TestParserNeverPanics(t *testing.T) {
	tokens := []string{"such", "as", "and", "other", "than", ",", ".", "including",
		"especially", "animal", "dog", "", "from", "in", "of", "many"}
	// Deterministic pseudo-random walks over the token vocabulary.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for trial := 0; trial < 5000; trial++ {
		length := 1 + next(12)
		parts := make([]string, length)
		for i := range parts {
			parts[i] = tokens[next(len(tokens))]
		}
		text := ""
		for i, p := range parts {
			if i > 0 {
				text += " "
			}
			text += p
		}
		// Must not panic; ok/!ok are both acceptable.
		hearst.ParseSentence(trial, text)
	}
}

// TestExtractorHandlesUnparseableCorpus: a corpus of garbage lines is
// counted, not fatal.
func TestExtractorHandlesUnparseableCorpus(t *testing.T) {
	x := extract.NewExtractor(extract.DefaultConfig())
	garbage := []corpus.Sentence{
		{ID: 0, Text: "complete nonsense"},
		{ID: 1, Text: ""},
		{ID: 2, Text: ". . . ."},
	}
	if core := x.Add(garbage); core != 0 {
		t.Errorf("garbage produced %d core extractions", core)
	}
	res := x.Result()
	if res.Unparseable != 3 {
		t.Errorf("unparseable = %d, want 3", res.Unparseable)
	}
}

// TestWorldCorpusContract: the corpus generator must stay within the
// world's vocabulary except for deliberately injected noise.
func TestWorldCorpusContract(t *testing.T) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 2
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 3000
	c := corpus.Generate(w, ccfg)
	for i := 0; i < c.Len(); i++ {
		truth := c.Truth(i)
		if w.Concept(truth.TrueConcept) == nil {
			t.Fatalf("sentence %d claims unknown concept %q", i, truth.TrueConcept)
		}
	}
}

// TestSaveLoadThroughAPI exercises the save/load path the CLI uses.
func TestSaveLoadThroughAPI(t *testing.T) {
	sys := Build(tinyConfig())
	path := filepath.Join(t.TempDir(), "kb.gob")
	if err := sys.KB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := kb.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPairs() != sys.KB.NumPairs() {
		t.Errorf("pairs %d after reload, want %d", loaded.NumPairs(), sys.KB.NumPairs())
	}
}
