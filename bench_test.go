package driftclean

// Benchmarks: one per table and figure of the paper (regeneration cost on
// a reduced world), substrate micro-benchmarks (extraction throughput,
// parsing, random walks, roll-back, KPCA, Algorithm 1), and the ablations
// called out in DESIGN.md §5. Quality-style ablations report their
// metric through b.ReportMetric so `go test -bench` doubles as a compact
// ablation table.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"driftclean/internal/clean"
	"driftclean/internal/core"
	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/experiments"
	"driftclean/internal/extract"
	"driftclean/internal/hearst"
	"driftclean/internal/kb"
	"driftclean/internal/kpca"
	"driftclean/internal/learn"
	"driftclean/internal/mutex"
	"driftclean/internal/rank"
	"driftclean/internal/seedlabel"
	"driftclean/internal/world"
)

// benchOptions is the reduced scale shared by the table/figure benches.
func benchOptions() experiments.Options {
	opts := experiments.Default()
	opts.Core.World.NumDomains = 3
	opts.Core.World.InstancesPerConceptMin = 50
	opts.Core.World.InstancesPerConceptMax = 100
	opts.Core.Corpus.NumSentences = 12000
	opts.Core.Clean.MaxRounds = 2
	opts.EvalConcepts = 8
	opts.RankKs = []int{20, 50, 100}
	return opts
}

var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchRunnerOnce.Do(func() { benchRunner = experiments.NewRunner(benchOptions()) })
	return benchRunner
}

var (
	benchSystemOnce sync.Once
	benchSystem     *core.System
)

// sharedSystem returns a built (drifted, uncleaned) system for substrate
// benches. Never mutate it.
func sharedSystem(b *testing.B) *core.System {
	b.Helper()
	benchSystemOnce.Do(func() { benchSystem = core.Build(benchOptions().Core) })
	return benchSystem
}

func benchExperiment(b *testing.B, id string) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// --- one benchmark per table and figure of the paper ---

func BenchmarkTable1Stats(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTable2Ranking(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3Cleaning(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4Detection(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5DPCleaning(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkFigure2Distributions(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFigure3Features(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFigure4ConceptSim(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFigure5aIterations(b *testing.B)   { benchExperiment(b, "fig5a") }
func BenchmarkFigure5bThreshold(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFigure5cConvergence(b *testing.B)  { benchExperiment(b, "fig5c") }

// --- substrate micro-benchmarks ---

// BenchmarkExtraction measures end-to-end iterative extraction
// throughput; the custom metric is sentences/second.
func BenchmarkExtraction(b *testing.B) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 10000
	c := corpus.Generate(w, ccfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := extract.Run(c, extract.DefaultConfig())
		if res.KB.NumPairs() == 0 {
			b.Fatal("extraction produced nothing")
		}
	}
	b.ReportMetric(float64(c.Len())*float64(b.N)/b.Elapsed().Seconds(), "sentences/s")
}

func BenchmarkHearstParse(b *testing.B) {
	sys := sharedSystem(b)
	sentences := sys.Corpus.Sentences
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sentences[i%len(sentences)]
		if _, ok := hearst.ParseSentence(s.ID, s.Text); !ok {
			b.Fatalf("unparseable: %q", s.Text)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := corpus.Generate(w, ccfg); c.Len() == 0 {
			b.Fatal("no sentences")
		}
	}
}

func BenchmarkRandomWalk(b *testing.B) {
	sys := sharedSystem(b)
	concept := biggestConcept(sys)
	g := rank.BuildGraph(sys.KB, concept)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := rank.RandomWalk(g, rank.DefaultConfig()); len(s) == 0 {
			b.Fatal("no scores")
		}
	}
	b.ReportMetric(float64(len(g.Nodes)), "nodes")
}

func BenchmarkTriggerGraphBuild(b *testing.B) {
	sys := sharedSystem(b)
	concept := biggestConcept(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := rank.BuildGraph(sys.KB, concept); len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkKBRollbackCascade measures the cascading roll-back of Sec 4.2
// on a deep synthetic trigger chain.
func BenchmarkKBRollbackCascade(b *testing.B) {
	const depth, width = 200, 5
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := kb.New()
		k.AddExtraction(0, "c", nil, []string{"root"}, nil, 1)
		prev := "root"
		for d := 0; d < depth; d++ {
			insts := make([]string, width)
			for w := range insts {
				insts[w] = pairName(d, w)
			}
			k.AddExtraction(d+1, "c", nil, insts, []string{prev}, d+2)
			prev = insts[0]
		}
		b.StartTimer()
		res := k.RemovePairs([]kb.Pair{{Concept: "c", Instance: "root"}})
		if res.ExtractionsRolled != depth {
			b.Fatalf("rolled %d, want %d", res.ExtractionsRolled, depth)
		}
	}
}

func pairName(d, w int) string {
	return string(rune('a'+d%26)) + string(rune('a'+w)) + string(rune('0'+d/26))
}

func BenchmarkMutexDiscovery(b *testing.B) {
	sys := sharedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := mutex.Analyze(sys.KB, mutex.DefaultConfig()); a.CoverageRate() == 0 {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkSeedLabeling(b *testing.B) {
	sys := sharedSystem(b)
	mx := mutex.Analyze(sys.KB, mutex.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab := seedlabel.New(sys.KB, mx, seedlabel.DefaultConfig())
		if s := lab.CollectStats(sys.KB.Concepts()); s.Labeled == 0 {
			b.Fatal("no seeds")
		}
	}
}

func BenchmarkKPCAFitProject(b *testing.B) {
	sys := sharedSystem(b)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		b.Fatal(err)
	}
	concept := a.Concepts[0]
	insts := sys.KB.Instances(concept)
	if len(insts) > 200 {
		insts = insts[:200]
	}
	raw := a.Features.Matrix(concept, insts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := kpca.Fit(raw, kpca.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tr.ProjectAll(raw)
	}
}

func BenchmarkMultiTaskTraining(b *testing.B) {
	sys := sharedSystem(b)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.TrainMultiTask(a.Tasks, sys.Cfg.MultiTask, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (DESIGN.md §5); quality via ReportMetric ---

// BenchmarkAblationEq21VsDropAll compares the Eq 21 sentence re-check
// against dropping every Intentional-DP-triggered extraction. The
// reported rcorr shows how much correct knowledge the re-check saves.
func BenchmarkAblationEq21VsDropAll(b *testing.B) {
	for _, mode := range []struct {
		name    string
		dropAll bool
	}{{"eq21", false}, {"dropall", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var rcorr, perr float64
			for i := 0; i < b.N; i++ {
				cfg := benchOptions().Core
				cfg.Clean.DropAllIntentional = mode.dropAll
				sys := core.Build(cfg)
				before := snapshotInstances(sys)
				if _, err := sys.CleanDPs(core.DetectMultiTask); err != nil {
					b.Fatal(err)
				}
				m := cleaningMetrics(sys, before)
				rcorr, perr = m.RCorr, m.PError
			}
			b.ReportMetric(rcorr, "rcorr")
			b.ReportMetric(perr, "perror")
		})
	}
}

// BenchmarkAblationDetectors compares cleaning outcomes across detection
// methods (multi-task vs the paper's baselines).
func BenchmarkAblationDetectors(b *testing.B) {
	for _, m := range []struct {
		name string
		kind core.DetectorKind
	}{
		{"multitask", core.DetectMultiTask},
		{"forest", core.DetectSupervised},
		{"ridge", core.DetectRidge},
		{"adhoc2", core.DetectAdHoc2},
	} {
		b.Run(m.name, func(b *testing.B) {
			var prec float64
			for i := 0; i < b.N; i++ {
				sys := core.Build(benchOptions().Core)
				if _, err := sys.CleanDPs(m.kind); err != nil {
					b.Fatal(err)
				}
				prec = sys.Oracle.KBPrecision(sys.KB, nil)
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// BenchmarkAblationRestartProbability probes the random-walk restart
// parameter around the paper's 0.15.
func BenchmarkAblationRestartProbability(b *testing.B) {
	sys := sharedSystem(b)
	concept := biggestConcept(sys)
	g := rank.BuildGraph(sys.KB, concept)
	for _, restart := range []struct {
		name string
		p    float64
	}{{"r05", 0.05}, {"r15", 0.15}, {"r30", 0.30}} {
		b.Run(restart.name, func(b *testing.B) {
			cfg := rank.DefaultConfig()
			cfg.Restart = restart.p
			var p100 float64
			for i := 0; i < b.N; i++ {
				s := rank.RandomWalk(g, cfg)
				p100 = sys.Oracle.PrecisionAtK(concept, s.Ranked(), 100)
			}
			b.ReportMetric(p100, "p@100")
		})
	}
}

// BenchmarkAblationSingleFeatures reports the detection F1 of each
// single-property ad-hoc detector against the learned multi-task
// detector (Table 4 rows as a bench).
func BenchmarkAblationSingleFeatures(b *testing.B) {
	sys := sharedSystem(b)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		kind core.DetectorKind
	}{
		{"f1", core.DetectAdHoc1},
		{"f2", core.DetectAdHoc2},
		{"f3", core.DetectAdHoc3},
		{"f4", core.DetectAdHoc4},
		{"multitask", core.DetectMultiTask},
	} {
		b.Run(m.name, func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				labels, err := sys.Detect(a, m.kind)
				if err != nil {
					b.Fatal(err)
				}
				f1 = detectionF1(sys, labels)
			}
			b.ReportMetric(f1, "F1")
		})
	}
}

// --- bench helpers ---

func biggestConcept(sys *core.System) string {
	best, bestN := "", 0
	for _, c := range sys.KB.Concepts() {
		if n := len(sys.KB.Instances(c)); n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

func snapshotInstances(sys *core.System) map[string][]string {
	out := map[string][]string{}
	for _, c := range sys.KB.Concepts() {
		out[c] = sys.KB.Instances(c)
	}
	return out
}

func cleaningMetrics(sys *core.System, before map[string][]string) eval.CleaningMetrics {
	var per []eval.CleaningMetrics
	for c, insts := range before {
		per = append(per, sys.Oracle.Cleaning(c, insts, sys.KB))
	}
	return eval.MergeCleaning(per)
}

func detectionF1(sys *core.System, labels clean.Labels) float64 {
	tp, fp, fn := 0, 0, 0
	for concept, predicted := range labels {
		truth := sys.Oracle.TruthLabels(sys.KB, concept)
		m := eval.Detection(truth, predicted)
		tp += m.TP
		fp += m.FP
		fn += m.FN
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

// BenchmarkAblationCascade compares the paper's Sec 4.2 cascading
// roll-back against one-shot pair removal; rerror shows the errors the
// cascade alone recovers.
func BenchmarkAblationCascade(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cascade", false}, {"oneshot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var rerr float64
			for i := 0; i < b.N; i++ {
				cfg := benchOptions().Core
				cfg.Clean.DisableCascade = mode.disable
				sys := core.Build(cfg)
				before := snapshotInstances(sys)
				if _, err := sys.CleanDPs(core.DetectMultiTask); err != nil {
					b.Fatal(err)
				}
				rerr = cleaningMetrics(sys, before).RError
			}
			b.ReportMetric(rerr, "rerror")
		})
	}
}

// BenchmarkAblationKPCA compares the ridge detector on the KPCA
// representation against the same detector on raw standardized features.
func BenchmarkAblationKPCA(b *testing.B) {
	sys := sharedSystem(b)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		b.Fatal(err)
	}
	rawTasks := make([]*learn.Task, len(a.Tasks))
	for i, t := range a.Tasks {
		rt := &learn.Task{Concept: t.Concept}
		for _, in := range t.Instances {
			rt.Instances = append(rt.Instances, learn.Instance{
				Name: in.Name, X: in.Raw, Raw: in.Raw, Label: in.Label, Labeled: in.Labeled,
			})
		}
		rawTasks[i] = rt
	}
	for _, mode := range []struct {
		name  string
		tasks []*learn.Task
	}{{"kpca", a.Tasks}, {"raw", rawTasks}} {
		b.Run(mode.name, func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				labels := clean.Labels{}
				for _, t := range mode.tasks {
					det, err := learn.TrainRidge(t, 1e-2)
					if err != nil {
						continue
					}
					labels[t.Concept] = learn.PredictTask(learn.Calibrate(det, t), t, false)
				}
				f1 = detectionF1(sys, labels)
			}
			b.ReportMetric(f1, "F1")
		})
	}
}
