package driftclean

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"driftclean/internal/bench"
	"driftclean/internal/fault"
)

// chaosConfig is a small pipeline configuration for fault-schedule runs:
// big enough to exercise every stage (including a real cleaning round),
// small enough to run several times per test.
func chaosConfig() Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 2
	cfg.World.InstancesPerConceptMin = 40
	cfg.World.InstancesPerConceptMax = 80
	cfg.Corpus.NumSentences = 6000
	cfg.Clean.MaxRounds = 1
	return cfg
}

// pipelineSites are every fault site the batch pipeline consults,
// derived from the generated fault.Registry (driftlint -gensites)
// rather than a hand-kept list: a new stage site lands in the registry
// and is chaos-covered here automatically. Serving sites (serve.*) have
// their own suite in internal/serve.
var pipelineSites = pipelineSitesFromRegistry()

func pipelineSitesFromRegistry() []string {
	var sites []string
	for _, site := range fault.Registry {
		switch {
		case strings.HasPrefix(site, "corpus."),
			strings.HasPrefix(site, "extract."),
			strings.HasPrefix(site, "clean."),
			strings.HasPrefix(site, "core."):
			sites = append(sites, site)
		}
	}
	return sites
}

// TestChaosDisabledFaultsAreNoOp: acceptance (a) — a nil injector and an
// enabled-but-ruleless injector must both leave the pipeline on its
// production path, producing byte-identical final KBs.
func TestChaosDisabledFaultsAreNoOp(t *testing.T) {
	run := func(inj *fault.Injector) string {
		cfg := chaosConfig()
		cfg.Fault = inj
		rep, err := Clean(cfg)
		if err != nil {
			t.Fatalf("fault-free pipeline failed: %v", err)
		}
		return bench.Fingerprint(rep.System.KB)
	}
	plain := run(nil)
	armedButEmpty := run(fault.New(1234, nil))
	if plain != armedButEmpty {
		t.Fatalf("ruleless injector changed the KB: %s vs %s", plain, armedButEmpty)
	}
	// Every site must still have been visited (the seams are live, they
	// just decided "no fault" every time — that's the no-op guarantee).
	counting := fault.New(1, nil)
	cfg := chaosConfig()
	cfg.Fault = counting
	if _, err := Clean(cfg); err != nil {
		t.Fatal(err)
	}
	for _, site := range pipelineSites {
		if counting.Count(site) == 0 {
			t.Errorf("site %s never consulted the injector", site)
		}
	}
}

// TestChaosLatencyOnlyIsByteIdentical: acceptance (a), second half — a
// schedule that injects only latency (faults that eventually "succeed")
// must not change a single byte of the final KB.
func TestChaosLatencyOnlyIsByteIdentical(t *testing.T) {
	run := func(inj *fault.Injector) string {
		cfg := chaosConfig()
		cfg.Fault = inj
		rep, err := Clean(cfg)
		if err != nil {
			t.Fatalf("pipeline failed under latency-only chaos: %v", err)
		}
		return bench.Fingerprint(rep.System.KB)
	}
	baseline := run(nil)
	lat := fault.New(77, map[string]fault.Rule{
		"corpus.*":  {Latency: time.Millisecond, LatencyProb: 0.5},
		"extract.*": {Latency: time.Millisecond, LatencyProb: 0.5},
		"clean.*":   {Latency: time.Millisecond, LatencyProb: 0.5},
		"core.*":    {Latency: time.Millisecond, LatencyProb: 0.5},
	})
	var sleeps int
	lat.SetSleep(func(time.Duration) { sleeps++ })
	if got := run(lat); got != baseline {
		t.Fatalf("latency-only chaos changed the KB: %s vs %s", got, baseline)
	}
	if sleeps == 0 {
		t.Fatal("latency schedule never slept — chaos exercised nothing")
	}
}

// TestChaosSmokeFingerprintMatchesBenchArtifact: the KB the chaos
// harness produces at the bench smoke scale must match the fingerprint
// the PR 3 benchmark artifact records for that scale, proving the fault
// seams did not fork the production code path.
func TestChaosSmokeFingerprintMatchesBenchArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale pipeline run")
	}
	data, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Skipf("no bench artifact: %v", err)
	}
	var artifact struct {
		Scales []struct {
			Name      string `json:"name"`
			Sentences int    `json:"sentences"`
			Rounds    int    `json:"clean_rounds"`
			Serial    struct {
				Fingerprint string `json:"kb_fingerprint"`
			} `json:"serial"`
		} `json:"scales"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("parsing BENCH_pipeline.json: %v", err)
	}
	if len(artifact.Scales) == 0 {
		t.Skip("bench artifact has no scales")
	}
	sc := artifact.Scales[0]
	cfg := DefaultConfig()
	cfg.Corpus.NumSentences = sc.Sentences
	cfg.Clean.MaxRounds = sc.Rounds
	cfg.Fault = fault.New(1, nil) // armed, ruleless: must be a pure no-op
	rep, err := Clean(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := bench.Fingerprint(rep.System.KB); got != sc.Serial.Fingerprint {
		t.Fatalf("scale %s fingerprint %s != bench artifact %s",
			sc.Name, got, sc.Serial.Fingerprint)
	}
}

// TestChaosPanicSurfacesAsReportError: acceptance (c) — a panic injected
// into any pipeline stage must come back as an ErrStagePanic-wrapped
// error from the public API, never crash the process, and stages past
// the build must still hand back the partial report.
func TestChaosPanicSurfacesAsReportError(t *testing.T) {
	for _, site := range pipelineSites {
		t.Run(site, func(t *testing.T) {
			cfg := chaosConfig()
			cfg.Fault = fault.New(5, map[string]fault.Rule{site: {PanicProb: 1}})
			rep, err := CleanWithContext(context.Background(), DetectMultiTask, WithConfig(cfg))
			if err == nil {
				t.Fatalf("forced panic at %s produced no error", site)
			}
			if !errors.Is(err, ErrStagePanic) {
				t.Fatalf("%s: error does not wrap ErrStagePanic: %v", site, err)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("%s: error lost the injected-fault sentinel: %v", site, err)
			}
			buildSite := site == "corpus.shard" || site == "extract.parse" || site == "extract.resolve"
			if buildSite && rep != nil {
				t.Fatalf("%s: build-stage panic returned a report", site)
			}
			if !buildSite {
				// The cleaning stage panicked after a successful build: the
				// partial report documents how far the run got.
				if rep == nil {
					t.Fatalf("%s: cleaning-stage panic dropped the partial report", site)
				}
				if rep.System == nil || rep.PairsBefore == 0 {
					t.Fatalf("%s: partial report missing the built system", site)
				}
			}
		})
	}
}

// TestChaosErrorInjectionIsDeterministic: two runs under the same fault
// seed fail identically; the error is reproducible from the seed alone.
func TestChaosErrorInjectionIsDeterministic(t *testing.T) {
	run := func() string {
		cfg := chaosConfig()
		cfg.Fault = fault.New(21, map[string]fault.Rule{"extract.resolve": {FailFirst: 2, PanicProb: 0}})
		// FailFirst on a Check site escalates to a panic on the first two
		// iterations; the API wraps it.
		_, err := CleanWithContext(context.Background(), DetectMultiTask, WithConfig(cfg))
		if err == nil {
			return ""
		}
		return err.Error()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("injected FailFirst produced no error")
	}
	if a != b {
		t.Fatalf("same seed produced different failures:\n%s\n%s", a, b)
	}
}
