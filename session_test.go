package driftclean

import (
	"context"
	"errors"
	"testing"

	"driftclean/internal/bench"
	"driftclean/internal/core"
	"driftclean/internal/corpus"
	"driftclean/internal/extract"
	"driftclean/internal/fault"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

func sessionConfig(sentences int) Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 2
	cfg.World.InstancesPerConceptMin = 40
	cfg.World.InstancesPerConceptMax = 80
	cfg.Corpus.NumSentences = sentences
	cfg.Clean.MaxRounds = 1
	return cfg
}

// referenceFingerprint runs the from-scratch batch pipeline — extract.Run
// over a sentence prefix, then the detect-and-clean loop on a fresh
// system — and fingerprints the cleaned KB. This is the ground truth the
// incremental session must match at every checkpoint.
func referenceFingerprint(t *testing.T, cfg Config, prefix []corpus.Sentence) string {
	t.Helper()
	sys := core.Prepare(cfg)
	res := extract.Run(&corpus.Corpus{Sentences: prefix}, sys.Cfg.Extract)
	sys.Extraction = res
	sys.KB = res.KB
	if _, err := sys.CleanDPs(core.DetectMultiTask); err != nil {
		t.Fatalf("reference clean: %v", err)
	}
	return bench.Fingerprint(sys.KB)
}

// splitBounds cuts n sentences into k batch end-offsets.
func splitBounds(n, k int) []int {
	bounds := make([]int, k)
	for i := 1; i <= k; i++ {
		bounds[i-1] = i * n / k
	}
	return bounds
}

// TestSessionCheckpointsMatchFromScratch is the tentpole's correctness
// gate: after every Ingest, the session's cleaned KB must be
// fingerprint-identical to a from-scratch batch run over the
// concatenation of all batches so far — the incremental path's caches
// and replays may save work, never change output.
func TestSessionCheckpointsMatchFromScratch(t *testing.T) {
	for _, tc := range []struct {
		name               string
		sentences, batches int
	}{
		{"smoke", 6000, 3},
		{"small", 12000, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sessionConfig(tc.sentences)
			ctx := context.Background()
			sess, err := Open(ctx, WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			sents := sess.Sentences()

			start := 0
			for ck, end := range splitBounds(len(sents), tc.batches) {
				rep, err := sess.Ingest(ctx, sents[start:end])
				start = end
				if err != nil && !errors.Is(err, ErrNoDPsDetected) {
					t.Fatalf("checkpoint %d: %v", ck+1, err)
				}
				if rep == nil || rep.System == nil {
					t.Fatalf("checkpoint %d: no report", ck+1)
				}
				got := bench.Fingerprint(sess.System().KB)
				want := referenceFingerprint(t, cfg, sents[:end])
				if got != want {
					t.Fatalf("checkpoint %d: incremental fingerprint %s != from-scratch %s",
						ck+1, got, want)
				}
				if rep.PairsAfter != sess.System().KB.NumPairs() {
					t.Fatalf("checkpoint %d: report PairsAfter %d != KB %d",
						ck+1, rep.PairsAfter, sess.System().KB.NumPairs())
				}
			}
			if sess.Checkpoints() != tc.batches {
				t.Fatalf("checkpoints = %d, want %d", sess.Checkpoints(), tc.batches)
			}
		})
	}
}

// TestSessionPublishGenerations: Publish before the first checkpoint is
// an error; afterwards each Publish returns a fresh, strictly increasing
// generation over the same cleaned state, and a closed session refuses
// further work.
func TestSessionPublishGenerations(t *testing.T) {
	ctx := context.Background()
	sess, err := Open(ctx, WithConfig(sessionConfig(6000)))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Publish(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("pre-ingest Publish error = %v, want ErrNoCheckpoint", err)
	}
	if _, err := sess.Ingest(ctx, sess.Sentences()); err != nil && !errors.Is(err, ErrNoDPsDetected) {
		t.Fatal(err)
	}
	a, err := sess.Publish()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if b.Generation() <= a.Generation() {
		t.Fatalf("generations not increasing: %d then %d", a.Generation(), b.Generation())
	}
	if a.Stats().DistinctPairs != b.Stats().DistinctPairs {
		t.Fatal("two publishes of one checkpoint must freeze the same state")
	}

	sess.Close()
	if _, err := sess.Ingest(ctx, nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Publish(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Publish after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionIngestCanceled: a canceled context surfaces as ErrCanceled
// and rolls the checkpoint back; the same batch then succeeds, and the
// final state matches the from-scratch run as if the failure never
// happened.
func TestSessionIngestCanceled(t *testing.T) {
	cfg := sessionConfig(6000)
	sess, err := Open(context.Background(), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sents := sess.Sentences()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := sess.Ingest(canceled, sents); !errors.Is(err, ErrCanceled) || rep != nil {
		t.Fatalf("pre-canceled Ingest = (%v, %v), want (nil, ErrCanceled)", rep, err)
	}
	if sess.Checkpoints() != 0 || sess.System().KB != nil {
		t.Fatal("canceled ingest must leave the session at checkpoint zero")
	}

	if _, err := sess.Ingest(context.Background(), sents); err != nil && !errors.Is(err, ErrNoDPsDetected) {
		t.Fatal(err)
	}
	got := bench.Fingerprint(sess.System().KB)
	if want := referenceFingerprint(t, cfg, sents); got != want {
		t.Fatalf("post-retry fingerprint %s != from-scratch %s", got, want)
	}
}

// TestSessionChaosMidIngestNeverTorn drives the full serving stack —
// Session behind a serve.Ingester — with faults injected mid-sequence
// at both layers: a pipeline fault inside checkpoint 1's cleaning loop
// (clean.round) and a serve-layer fault (serve.ingest) at checkpoint 2
// while a good snapshot is live. Each failure must surface as an error,
// leave the served snapshot exactly as it was (stale-but-serving, never
// torn), and not consume the batch; after retries, the final state must
// be fingerprint-identical to a fault-free from-scratch run.
func TestSessionChaosMidIngestNeverTorn(t *testing.T) {
	cfg := sessionConfig(6000)
	// The first clean.round hit fails: checkpoint 1's first attempt dies
	// mid-cleaning and must roll back.
	cfg.Fault = fault.New(7, map[string]fault.Rule{"clean.round": {FailFirst: 1}})

	ctx := context.Background()
	sess, err := Open(ctx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sents := sess.Sentences()

	svc := serve.New(nil, serve.Options{})
	run := func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		if _, err := sess.Ingest(ctx, batch); err != nil && !errors.Is(err, ErrNoDPsDetected) {
			return nil, err
		}
		return sess.Publish()
	}
	ingester := serve.NewIngester(svc, run, nil)
	bounds := splitBounds(len(sents), 3)
	b1, b2, b3 := sents[:bounds[0]], sents[bounds[0]:bounds[1]], sents[bounds[1]:]

	// Checkpoint 1, attempt 1: the injected cleaning fault rolls the
	// session back to empty; nothing was ever published.
	if _, err := ingester.Ingest(ctx, b1); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint 1 error = %v, want injected fault", err)
	}
	if svc.Current() != nil || !svc.Stale() || sess.Checkpoints() != 0 {
		t.Fatalf("failed first checkpoint must leave nothing published and the session empty (cur=%v stale=%v ckpts=%d)",
			svc.Current(), svc.Stale(), sess.Checkpoints())
	}
	// Retry the identical batch: the fault budget is spent.
	gen1, err := ingester.Ingest(ctx, b1)
	if err != nil {
		t.Fatalf("checkpoint 1 retry: %v", err)
	}
	if svc.Stale() || svc.Generation() != gen1 {
		t.Fatal("retry must publish fresh")
	}
	if got, want := bench.Fingerprint(sess.System().KB), referenceFingerprint(t, faultFree(cfg), b1); got != want {
		t.Fatalf("checkpoint 1 fingerprint %s != from-scratch %s", got, want)
	}

	// Checkpoint 2 through a faulty serve layer: the good generation
	// must keep serving, untouched — stale, never torn.
	snapBefore := svc.Current()
	faulty := serve.NewIngester(svc, run, fault.New(3, map[string]fault.Rule{"serve.ingest": {FailFirst: 1}}))
	if _, err := faulty.Ingest(ctx, b2); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint 2 error = %v, want injected fault", err)
	}
	if svc.Current() != snapBefore {
		t.Fatal("failed ingest must not touch the served snapshot")
	}
	if !svc.Stale() || sess.Checkpoints() != 1 {
		t.Fatalf("serve-layer failure must mark stale and leave the session at checkpoint 1 (stale=%v ckpts=%d)",
			svc.Stale(), sess.Checkpoints())
	}
	if _, err := svc.Stats(ctx); err != nil {
		t.Fatalf("stale snapshot must keep answering queries: %v", err)
	}
	gen2, err := faulty.Ingest(ctx, b2)
	if err != nil {
		t.Fatalf("checkpoint 2 retry: %v", err)
	}
	if gen2 <= gen1 || svc.Stale() {
		t.Fatalf("checkpoint 2 retry must publish a fresh later generation (%d after %d)", gen2, gen1)
	}

	// Checkpoint 3 and the end-to-end identity despite the chaos.
	if _, err := ingester.Ingest(ctx, b3); err != nil {
		t.Fatalf("checkpoint 3: %v", err)
	}
	got := bench.Fingerprint(sess.System().KB)
	if want := referenceFingerprint(t, faultFree(cfg), sents); got != want {
		t.Fatalf("final fingerprint %s != fault-free from-scratch %s", got, want)
	}
}

// faultFree strips the injector so reference runs are clean.
func faultFree(cfg Config) Config {
	cfg.Fault = nil
	return cfg
}
