package driftclean

// Seed determinism at the artifact level: two runs with the same seeds
// must produce byte-identical CSV output, not merely equal summary
// numbers (TestPipelineDeterminism covers those). This is the contract
// that makes results/*.csv reproducible and the paper's drift metrics
// auditable; it exercises world generation, Zipf corpus sampling, the
// parallel analysis fan-out, detection, cleaning and CSV rendering in
// one diff.

import (
	"testing"
)

func tinyExperimentOptions() ExperimentOptions {
	opts := DefaultExperimentOptions()
	opts.Core.World.NumDomains = 2
	opts.Core.World.InstancesPerConceptMin = 40
	opts.Core.World.InstancesPerConceptMax = 80
	opts.Core.Corpus.NumSentences = 8000
	opts.Core.Clean.MaxRounds = 2
	opts.EvalConcepts = 6
	return opts
}

// TestExperimentCSVDeterminism runs the same experiment on two fresh
// runners and diffs the rendered CSV byte for byte. Table 3 is the
// deepest path: it cleans the KB with several detection methods, so the
// diff covers the parallel analysis fan-out and every detector.
func TestExperimentCSVDeterminism(t *testing.T) {
	const id = "table3"
	first, err := RunExperiment(id, tinyExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunExperiment(id, tinyExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	csvA, csvB := first.CSV(), second.CSV()
	if csvA != csvB {
		t.Fatalf("CSV output differs between identical seeded runs:\nrun A:\n%s\nrun B:\n%s", csvA, csvB)
	}
	if len(csvA) == 0 {
		t.Fatal("experiment rendered an empty CSV")
	}
}

// TestBuildKBDeterminism pins the upstream half: the drifted KB itself
// (every pair, in canonical order) must be identical across two builds
// with the same seeds.
func TestBuildKBDeterminism(t *testing.T) {
	a := Build(tinyConfig())
	b := Build(tinyConfig())
	pa, pb := a.KB.Pairs(), b.KB.Pairs()
	if len(pa) != len(pb) {
		t.Fatalf("pair counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}
