package driftclean

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// noDriftConfig runs extraction for a single iteration: no triggers, no
// drift, and therefore nothing for the detector to find.
func noDriftConfig() Config {
	cfg := smallConfig()
	cfg.Extract.MaxIterations = 1
	return cfg
}

func TestCleanContextProgressAndReport(t *testing.T) {
	type event struct {
		phase Phase
		round Round
	}
	var mu sync.Mutex
	var events []event
	rep, err := CleanContext(context.Background(),
		WithConfig(smallConfig()),
		WithProgress(func(p Phase, r Round) {
			mu.Lock()
			events = append(events, event{p, r})
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrecisionAfter <= rep.PrecisionBefore {
		t.Errorf("cleaning did not improve precision: %.3f -> %.3f",
			rep.PrecisionBefore, rep.PrecisionAfter)
	}
	if len(events) < 3 {
		t.Fatalf("events = %v", events)
	}
	if events[0] != (event{PhaseBuild, 0}) {
		t.Errorf("first event = %v, want build", events[0])
	}
	if last := events[len(events)-1]; last != (event{PhaseEvaluate, 0}) {
		t.Errorf("last event = %v, want evaluate", last)
	}
	cleanRounds := 0
	for _, e := range events[1 : len(events)-1] {
		cleanRounds++
		if e.phase != PhaseClean || e.round != cleanRounds {
			t.Errorf("middle event %d = {%v %d}, want {clean %d}", cleanRounds, e.phase, e.round, cleanRounds)
		}
	}
	// Every executed round — including the terminating zero-DP one — is
	// both announced through OnRound and recorded in the report.
	if cleanRounds != rep.Rounds {
		t.Errorf("saw %d clean-round events for %d reported rounds", cleanRounds, rep.Rounds)
	}
}

func TestCleanContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := CleanContext(ctx, WithConfig(smallConfig()))
	if rep != nil {
		t.Error("canceled run returned a report")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not wrap context.Canceled", err)
	}
}

func TestCleanContextCancelMidRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Clean.MaxRounds = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := CleanWithContext(ctx, DetectMultiTask,
		WithConfig(cfg),
		WithProgress(func(p Phase, r Round) {
			if p == PhaseClean && r == 1 {
				cancel() // observed before round 2 starts
			}
		}))
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestCleanContextNoDPsDetected(t *testing.T) {
	rep, err := CleanContext(context.Background(), WithConfig(noDriftConfig()))
	if !errors.Is(err, ErrNoDPsDetected) {
		t.Fatalf("err = %v, want ErrNoDPsDetected", err)
	}
	// A DP-free run still executes (and records) the one detection round
	// that discovered there was nothing to clean, and that round is the
	// convergence fixpoint.
	if rep == nil || rep.Rounds != 1 || !rep.Converged {
		t.Fatalf("report alongside ErrNoDPsDetected = %+v", rep)
	}
	if rep.PairsAfter != rep.PairsBefore {
		t.Errorf("DP-free run changed the KB: %d -> %d pairs", rep.PairsBefore, rep.PairsAfter)
	}

	// The deprecated shim keeps the legacy contract: no error.
	legacyRep, legacyErr := Clean(noDriftConfig())
	if legacyErr != nil {
		t.Errorf("legacy Clean on DP-free run: %v", legacyErr)
	}
	if legacyRep == nil || legacyRep.PairsAfter != rep.PairsAfter {
		t.Errorf("legacy report diverged: %+v", legacyRep)
	}
}

func TestCleanContextWithMethod(t *testing.T) {
	rep, err := CleanContext(context.Background(),
		WithConfig(smallConfig()), WithMethod(DetectAdHoc2))
	if err != nil && !errors.Is(err, ErrNoDPsDetected) {
		t.Fatal(err)
	}
	if rep == nil || rep.System == nil {
		t.Fatal("no report")
	}
	if rep.PrecisionAfter < rep.PrecisionBefore-0.01 {
		t.Errorf("ad-hoc cleaning degraded precision: %.3f -> %.3f",
			rep.PrecisionBefore, rep.PrecisionAfter)
	}
}

func TestReportSnapshot(t *testing.T) {
	rep, err := CleanContext(context.Background(), WithConfig(smallConfig()))
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Snapshot()
	if snap.Generation() == 0 {
		t.Error("snapshot has zero generation")
	}
	if snap.Stats().DistinctPairs != rep.PairsAfter {
		t.Errorf("snapshot pairs = %d, report says %d", snap.Stats().DistinctPairs, rep.PairsAfter)
	}
	// The snapshot is isolated from later pipeline mutation.
	before := snap.Stats()
	rep.System.KB.RemovePairs(rep.System.KB.Pairs()[:1])
	if snap.Stats() != before {
		t.Error("mutating the report's KB changed the frozen snapshot")
	}
	if rep.System.KB.NumPairs() >= before.DistinctPairs {
		t.Error("mutation did not apply to the live KB")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{PhaseBuild: "build", PhaseClean: "clean", PhaseEvaluate: "evaluate", Phase(9): "Phase(9)"} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
