module driftclean

go 1.22
